// Incremental checkpoints with sparse parity updates (ECCheckConfig::delta).
//
// The contract under test is bit-exactness: a delta save — diff against the
// cached base version, ship only dirty extents' XOR-deltas, patch the data
// row with XOR and each parity row with P' = P ⊕ G·Δ — must leave every
// durable store byte-identical to a full re-encode of the same shards, on
// VirtualFabric and over real sockets alike. Randomized differential tests
// pin the codec layer (update_row vs full encode across (k, m, w), both
// kernel modes, misaligned regions); engine A/B runs pin the protocol; a
// mid-delta peer death pins the torn-save rollback and the base-cache
// validity check that forces the safe full-encode fallback.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <functional>
#include <latch>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/fabric.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/delta.hpp"
#include "core/engine_keys.hpp"
#include "core/fabric_engine.hpp"
#include "core/session.hpp"
#include "dnn/sparse_update.hpp"
#include "ec/crs_codec.hpp"
#include "ec/parallel_codec.hpp"
#include "net/transport.hpp"
#include "runtime/thread_pool.hpp"

namespace eccheck {
namespace {

namespace fs = std::filesystem;
using ec::CrsCodec;
using ec::KernelMode;

// ---------------------------------------------------------------------------
// Codec layer: update_row / update_parity vs full re-encode.
// ---------------------------------------------------------------------------

struct DeltaCase {
  int k, m, w;
  KernelMode mode;
};

std::string delta_case_name(const ::testing::TestParamInfo<DeltaCase>& info) {
  const DeltaCase& c = info.param;
  return "k" + std::to_string(c.k) + "m" + std::to_string(c.m) + "w" +
         std::to_string(c.w) +
         (c.mode == KernelMode::kGfTable ? "gftable" : "bitmatrix");
}

class DeltaCodecTest : public ::testing::TestWithParam<DeltaCase> {};

std::vector<Buffer> random_chunks(int k, std::size_t bytes,
                                  std::uint64_t seed) {
  std::vector<Buffer> data;
  for (int c = 0; c < k; ++c) {
    data.emplace_back(bytes, Buffer::Init::kUninitialized);
    fill_random(data.back().span(), seed + static_cast<std::uint64_t>(c));
  }
  return data;
}

std::vector<Buffer> full_encode(const CrsCodec& codec,
                                const std::vector<Buffer>& data,
                                std::size_t bytes) {
  std::vector<ByteSpan> in;
  for (const Buffer& d : data) in.push_back(d.span());
  std::vector<Buffer> parity;
  for (int r = 0; r < codec.m(); ++r)
    parity.emplace_back(bytes, Buffer::Init::kUninitialized);
  std::vector<MutableByteSpan> out;
  for (Buffer& p : parity) out.push_back(p.span());
  codec.encode(in, out);
  return parity;
}

// Randomized differential: mutate random (often misaligned) regions of
// random chunks, fold each mutation into the parity with update_parity, and
// demand byte-equality with a from-scratch re-encode after every step.
TEST_P(DeltaCodecTest, UpdateParityMatchesFullReencode) {
  const DeltaCase c = GetParam();
  const CrsCodec codec(c.k, c.m, c.w, c.mode);
  const std::size_t P = 1536;  // multiple of every granularity in the suite
  ASSERT_EQ(P % codec.packet_granularity(), 0u);
  // gftable w=16 works on 2-byte symbols; everything else is byte-granular.
  const std::size_t sym =
      (c.mode == KernelMode::kGfTable && c.w == 16) ? 2 : 1;

  std::vector<Buffer> data = random_chunks(c.k, P, 0xD17A);
  std::vector<Buffer> parity = full_encode(codec, data, P);

  SplitMix64 rng(0xC0FFEE ^ static_cast<std::uint64_t>(c.k * 100 + c.m * 10 +
                                                       c.w) ^
                 static_cast<std::uint64_t>(c.mode));
  for (int step = 0; step < 24; ++step) {
    const int chunk = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(c.k)));
    std::size_t off = rng.next_below(P - sym) / sym * sym;
    std::size_t len =
        (1 + rng.next_below(std::min<std::uint64_t>(P - off, 700))) / sym *
        sym;
    if (len == 0) len = sym;

    Buffer mutated(len, Buffer::Init::kUninitialized);
    fill_random(mutated.span(), 0xAB5E ^ static_cast<std::uint64_t>(step));
    Buffer delta(len, Buffer::Init::kUninitialized);
    std::memcpy(delta.data(), mutated.data(), len);
    xor_into(delta.span(), data[static_cast<std::size_t>(chunk)]
                               .span()
                               .subspan(off, len));
    std::memcpy(data[static_cast<std::size_t>(chunk)].data() + off,
                mutated.data(), len);

    std::vector<MutableByteSpan> pspans;
    for (Buffer& p : parity) pspans.push_back(p.span());
    codec.update_parity(chunk, off, delta.span(), pspans);

    const std::vector<Buffer> want = full_encode(codec, data, P);
    for (int r = 0; r < c.m; ++r)
      ASSERT_EQ(parity[static_cast<std::size_t>(r)],
                want[static_cast<std::size_t>(r)])
          << "step " << step << " parity row " << r << " (chunk " << chunk
          << ", off " << off << ", len " << len << ")";
  }
}

TEST_P(DeltaCodecTest, ParallelUpdateMatchesSerial) {
  const DeltaCase c = GetParam();
  const CrsCodec codec(c.k, c.m, c.w, c.mode);
  runtime::ThreadPool pool(4);
  // Tiny slices so multi-slice splitting actually happens on the gftable
  // path (bitmatrix delegates to the serial codec by design).
  const ec::ParallelCodec pc(codec, pool, /*slice_bytes=*/256);
  const std::size_t P = 4096;
  ASSERT_EQ(P % codec.packet_granularity(), 0u);
  const std::size_t sym =
      (c.mode == KernelMode::kGfTable && c.w == 16) ? 2 : 1;

  std::vector<Buffer> data = random_chunks(c.k, P, 0x9A11);
  std::vector<Buffer> serial = full_encode(codec, data, P);
  std::vector<Buffer> sliced;
  for (const Buffer& p : serial) sliced.push_back(p.clone());

  SplitMix64 rng(0xFA57 + static_cast<std::uint64_t>(c.w));
  for (int step = 0; step < 8; ++step) {
    const int chunk = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(c.k)));
    const std::size_t off = rng.next_below(P / 2) / sym * sym;
    std::size_t len = (sym + rng.next_below(P - off - sym)) / sym * sym;
    if (len == 0) len = sym;
    Buffer delta(len, Buffer::Init::kUninitialized);
    fill_random(delta.span(), 0xBEE5 + static_cast<std::uint64_t>(step));

    std::vector<MutableByteSpan> a, b;
    for (Buffer& p : serial) a.push_back(p.span());
    for (Buffer& p : sliced) b.push_back(p.span());
    codec.update_parity(chunk, off, delta.span(), a);
    pc.update_parity(chunk, off, delta.span(), b);
    for (int r = 0; r < c.m; ++r)
      ASSERT_EQ(sliced[static_cast<std::size_t>(r)],
                serial[static_cast<std::size_t>(r)])
          << "step " << step << " row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DeltaCodecTest,
    ::testing::Values(DeltaCase{2, 2, 8, KernelMode::kGfTable},
                      DeltaCase{2, 2, 8, KernelMode::kXorBitmatrix},
                      DeltaCase{4, 2, 8, KernelMode::kGfTable},
                      DeltaCase{4, 2, 8, KernelMode::kXorBitmatrix},
                      DeltaCase{3, 3, 4, KernelMode::kGfTable},
                      DeltaCase{4, 3, 16, KernelMode::kGfTable},
                      DeltaCase{3, 2, 16, KernelMode::kXorBitmatrix}),
    delta_case_name);

// ---------------------------------------------------------------------------
// Dirty tracking: diff_packet merging and the manifest wire format.
// ---------------------------------------------------------------------------

TEST(DeltaExtents, DiffMergesAdjacentChunksAndHandlesTail) {
  Buffer base(100, Buffer::Init::kZeroed);
  Buffer next(100, Buffer::Init::kZeroed);
  next.data()[3] = std::byte{1};   // chunk 0
  next.data()[17] = std::byte{1};  // chunk 1 — adjacent, merges with chunk 0
  next.data()[49] = std::byte{1};  // chunk 3
  next.data()[99] = std::byte{1};  // short tail chunk [96, 100)
  const auto ext = core::diff_packet(7, base.span(), next.span(), 16);
  const std::vector<core::DirtyExtent> want = {
      {7, 0, 32}, {7, 48, 16}, {7, 96, 4}};
  EXPECT_EQ(ext, want);
  EXPECT_EQ(core::dirty_bytes(ext), 52u);
  EXPECT_TRUE(core::diff_packet(0, base.span(), base.span(), 16).empty());
}

TEST(DeltaExtents, ManifestRoundTripsAndRejectsTruncation) {
  const std::vector<core::DirtyExtent> ext = {
      {0, 0, 8}, {2, 4096, 512}, {31, 65528, 8}};
  Buffer blob = core::serialize_extents(ext);
  EXPECT_EQ(core::deserialize_extents(blob.span()), ext);
  EXPECT_THROW(core::deserialize_extents(blob.span().subspan(
                   0, blob.size() - 1)),
               CheckFailure);
}

// ---------------------------------------------------------------------------
// Engine A/B: delta-on vs delta-off over VirtualFabric.
// ---------------------------------------------------------------------------

constexpr int kK = 2;
constexpr int kM = 2;
constexpr int kNodes = kK + kM;

cluster::ClusterConfig vc_config(int gpus) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.gpus_per_node = gpus;
  return cfg;
}

core::ECCheckConfig delta_config(bool delta_on, bool flush = false) {
  core::ECCheckConfig cfg;
  cfg.k = kK;
  cfg.m = kM;
  cfg.packet_size = kib(16);
  cfg.flush_to_remote = flush;
  cfg.delta.enabled = delta_on;
  cfg.delta.granularity = 512;
  return cfg;
}

dnn::SparseUpdateSpec sparse_spec(double density) {
  dnn::SparseUpdateSpec spec;
  spec.embedding_rows = 2048;
  spec.embedding_dim = 64;
  spec.dense_tensors = 1;
  spec.dense_elems = 256;
  spec.row_density = density;
  return spec;
}

std::vector<dnn::StateDict> sparse_shards(const dnn::SparseUpdateSpec& spec,
                                          int world) {
  std::vector<dnn::StateDict> shards;
  for (int w = 0; w < world; ++w)
    shards.push_back(dnn::make_sparse_model_shard(spec, w));
  return shards;
}

std::vector<const dnn::StateDict*> pointers(
    const std::vector<dnn::StateDict>& shards) {
  std::vector<const dnn::StateDict*> p;
  for (const auto& sd : shards) p.push_back(&sd);
  return p;
}

std::vector<std::uint64_t> digests_of(const std::vector<dnn::StateDict>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& sd : v) out.push_back(sd.digest());
  return out;
}

using StoreImage = std::map<std::string, Buffer>;

StoreImage snapshot(cluster::Store& s, const std::string& prefix = "") {
  StoreImage img;
  for (const std::string& key : s.keys_with_prefix(prefix))
    img.emplace(key, s.get(key).clone());
  return img;
}

void expect_identical(const StoreImage& got, const StoreImage& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  auto a = got.begin();
  auto b = want.begin();
  for (; a != got.end(); ++a, ++b) {
    ASSERT_EQ(a->first, b->first) << what;
    EXPECT_TRUE(a->second == b->second)
        << what << ": key '" << a->first << "' differs";
  }
}

std::uint64_t stat_of(const ckpt::SaveReport& rep, const std::string& key) {
  auto it = rep.stats.find(key);
  return it == rep.stats.end() ? 0 : it->second;
}

// Three saves of a 1%-density sparse workload, delta-on vs delta-off in
// lockstep: every node's durable footprint and the remote store must stay
// byte-identical after each save; the delta saves must move an order of
// magnitude fewer bytes; and after a double fault both clusters must
// recover the same bits. Node replacement wipes the base cache, so the
// save after recovery must fall back to a full encode — and still match.
TEST(DeltaEngine, VirtualFabricSavesByteIdenticalToFullEncode) {
  const int g = 1, W = kNodes * g;
  const dnn::SparseUpdateSpec spec = sparse_spec(0.01);
  std::vector<dnn::StateDict> shards = sparse_shards(spec, W);

  cluster::VirtualCluster vc_delta(vc_config(g)), vc_full(vc_config(g));
  cluster::VirtualFabric fab_delta(vc_delta), fab_full(vc_full);
  core::FabricSession on(fab_delta, delta_config(true, /*flush=*/true), g, 2);
  core::FabricSession off(fab_full, delta_config(false, /*flush=*/true), g, 2);

  for (std::int64_t it = 1; it <= 3; ++it) {
    if (it > 1)
      for (int w = 0; w < W; ++w)
        dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], spec, w,
                                 it - 1);
    const ckpt::SaveReport rd = on.save(pointers(shards));
    const ckpt::SaveReport rf = off.save(pointers(shards));

    if (it == 1) {
      // No base yet: the first save must take the full path and say so.
      EXPECT_EQ(stat_of(rd, "delta.save.count"), 0u) << "save " << it;
      EXPECT_EQ(stat_of(rd, "delta.fallback.count"), 1u) << "save " << it;
    } else {
      EXPECT_EQ(stat_of(rd, "delta.save.count"), 1u) << "save " << it;
      EXPECT_EQ(stat_of(rd, "delta.fallback.count"), 0u) << "save " << it;
      EXPECT_GT(stat_of(rd, "delta.extents.count"), 0u) << "save " << it;
      // The acceptance bar: ≤ 5% dirty must move ≥ 10× fewer fabric bytes.
      // (The low-frequency remote flush still writes whole rows — the
      // remote store is a dumb key-value tier with no patch primitive.)
      EXPECT_GE(rf.network_bytes, 10 * rd.network_bytes) << "save " << it;
    }
    // Durable keys ("ec/...") byte-identical; the delta cluster additionally
    // carries its unversioned base cache, which is not part of the contract.
    for (int node = 0; node < kNodes; ++node)
      expect_identical(snapshot(vc_delta.host(node), "ec/"),
                       snapshot(vc_full.host(node), "ec/"),
                       "node " + std::to_string(node) + " after save " +
                           std::to_string(it));
    expect_identical(snapshot(vc_delta.remote()), snapshot(vc_full.remote()),
                     "remote store after save " + std::to_string(it));
  }

  const auto want = digests_of(shards);
  for (cluster::VirtualCluster* c : {&vc_delta, &vc_full}) {
    c->kill(1);
    c->kill(3);
    c->replace(1);
    c->replace(3);
  }
  std::vector<dnn::StateDict> out_d, out_f;
  const auto ld = on.load(out_d);
  const auto lf = off.load(out_f);
  ASSERT_TRUE(ld.report.success) << ld.report.detail;
  ASSERT_TRUE(lf.report.success) << lf.report.detail;
  EXPECT_EQ(ld.version, 3);
  EXPECT_EQ(digests_of(out_d), want);
  EXPECT_EQ(digests_of(out_f), want);

  // The replaced nodes lost their base caches: the next save must detect
  // the disagreement, fall back, and still match the full-encode cluster.
  for (int w = 0; w < W; ++w)
    dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], spec, w, 3);
  const ckpt::SaveReport rd4 = on.save(pointers(shards));
  off.save(pointers(shards));
  EXPECT_EQ(stat_of(rd4, "delta.save.count"), 0u);
  EXPECT_EQ(stat_of(rd4, "delta.fallback.count"), 1u);
  for (int node = 0; node < kNodes; ++node)
    expect_identical(snapshot(vc_delta.host(node), "ec/"),
                     snapshot(vc_full.host(node), "ec/"),
                     "node " + std::to_string(node) + " after post-repair save");
}

// Fallback triggers: dirty ratio above the threshold, and a missing or
// stale base marker. Every fallback must still commit a loadable,
// bit-exact version.
TEST(DeltaEngine, FallsBackOnHighDensityAndInvalidatedCache) {
  const int g = 2, W = kNodes * g;
  const dnn::SparseUpdateSpec spec = sparse_spec(0.01);
  std::vector<dnn::StateDict> shards = sparse_shards(spec, W);

  cluster::VirtualCluster vc(vc_config(g));
  cluster::VirtualFabric fabric(vc);
  core::ECCheckConfig cfg = delta_config(true);
  cfg.delta.max_dirty_ratio = 0.35;
  core::FabricSession session(fabric, cfg, g, 2);

  session.save(pointers(shards));  // v1: full (no base yet)

  // Rewrite every embedding row: dirty ratio ≈ 1 > 0.35 → full encode.
  const dnn::SparseUpdateSpec dense_spec = sparse_spec(1.0);
  for (int w = 0; w < W; ++w)
    dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], dense_spec,
                             w, 1);
  const ckpt::SaveReport r2 = session.save(pointers(shards));
  EXPECT_EQ(stat_of(r2, "delta.save.count"), 0u);
  EXPECT_EQ(stat_of(r2, "delta.fallback.count"), 1u);

  // Sparse again → the delta path re-arms off the refreshed base cache.
  for (int w = 0; w < W; ++w)
    dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], spec, w, 2);
  const ckpt::SaveReport r3 = session.save(pointers(shards));
  EXPECT_EQ(stat_of(r3, "delta.save.count"), 1u);
  EXPECT_GT(stat_of(r3, "delta.dirty.bytes"), 0u);

  // A vanished base marker on one node must veto the delta everywhere.
  vc.host(2).erase(core::keys::base_mark_key(""));
  for (int w = 0; w < W; ++w)
    dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], spec, w, 3);
  const ckpt::SaveReport r4 = session.save(pointers(shards));
  EXPECT_EQ(stat_of(r4, "delta.save.count"), 0u);
  EXPECT_EQ(stat_of(r4, "delta.fallback.count"), 1u);

  std::vector<dnn::StateDict> out;
  const auto l = session.load(out);
  ASSERT_TRUE(l.report.success) << l.report.detail;
  EXPECT_EQ(l.version, 4);
  EXPECT_EQ(digests_of(out), digests_of(shards));
}

// ---------------------------------------------------------------------------
// Socket leg: the same delta session over real UDS sockets, compared
// store-for-store against VirtualFabric (delta-on, full image including the
// base cache) and against a full-encode reference (durable keys).
// ---------------------------------------------------------------------------

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/eccheck-deltatest-XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::vector<net::Endpoint> uds_endpoints(const TempDir& dir, int n) {
  std::vector<net::Endpoint> eps;
  for (int r = 0; r < n; ++r)
    eps.push_back(
        net::Endpoint::uds(dir.path + "/rank" + std::to_string(r) + ".sock"));
  return eps;
}

net::TransportOptions fast_opts(const TempDir& dir) {
  net::TransportOptions o;
  o.connect_timeout = net::Millis(500);
  o.connect_retries = 20;
  o.backoff_base = net::Millis(2);
  o.backoff_max = net::Millis(50);
  o.io_timeout = net::Millis(5000);
  o.remote_dir = dir.path + "/remote";
  return o;
}

using RankBody = std::function<void(int rank)>;

void run_ranks(int n, const RankBody& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

TEST(DeltaEngine, SocketDeltaSessionMatchesVirtualFabricByteExact) {
  const int g = 1, W = kNodes * g;
  const dnn::SparseUpdateSpec spec = sparse_spec(0.01);

  // References: one delta-on and one delta-off VirtualFabric run of the
  // exact same three-save sequence.
  cluster::VirtualCluster vc_delta(vc_config(g)), vc_full(vc_config(g));
  cluster::VirtualFabric fab_delta(vc_delta), fab_full(vc_full);
  {
    std::vector<dnn::StateDict> shards = sparse_shards(spec, W);
    core::FabricSession on(fab_delta, delta_config(true), g, 2);
    core::FabricSession off(fab_full, delta_config(false), g, 2);
    for (std::int64_t it = 1; it <= 3; ++it) {
      if (it > 1)
        for (int w = 0; w < W; ++w)
          dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], spec,
                                   w, it - 1);
      on.save(pointers(shards));
      off.save(pointers(shards));
    }
  }

  TempDir dir;
  auto eps = uds_endpoints(dir, kNodes);
  std::vector<StoreImage> socket_imgs(kNodes);
  std::vector<std::uint64_t> socket_delta_saves(kNodes, 0);
  std::vector<std::vector<std::uint64_t>> socket_digests(kNodes);
  run_ranks(kNodes, [&](int rank) {
    net::SocketTransport fabric(rank, eps, fast_opts(dir));
    core::FabricSession session(fabric, delta_config(true), g, 2);
    dnn::StateDict mine = dnn::make_sparse_model_shard(spec, rank);
    for (std::int64_t it = 1; it <= 3; ++it) {
      if (it > 1) dnn::apply_sparse_update(mine, spec, rank, it - 1);
      std::vector<const dnn::StateDict*> shards{&mine};
      const ckpt::SaveReport rep = session.save(shards);
      socket_delta_saves[static_cast<std::size_t>(rank)] +=
          stat_of(rep, "delta.save.count");
    }
    socket_imgs[static_cast<std::size_t>(rank)] = snapshot(fabric.store(rank));
    std::vector<dnn::StateDict> out;
    const auto l = session.load(out);
    ASSERT_TRUE(l.report.success) << "rank " << rank << ": "
                                  << l.report.detail;
    EXPECT_EQ(l.version, 3) << "rank " << rank;
    socket_digests[static_cast<std::size_t>(rank)] = digests_of(out);
  });

  for (int rank = 0; rank < kNodes; ++rank) {
    // Saves 2 and 3 took the incremental path on every rank.
    EXPECT_EQ(socket_delta_saves[static_cast<std::size_t>(rank)], 2u)
        << "rank " << rank;
    // Whole image (durable keys + base cache) matches the simulator…
    expect_identical(socket_imgs[static_cast<std::size_t>(rank)],
                     snapshot(vc_delta.host(rank)),
                     "rank " + std::to_string(rank) + " vs VirtualFabric");
    // …and the durable keys match the full-encode reference.
    StoreImage durable;
    for (const auto& [key, buf] : socket_imgs[static_cast<std::size_t>(rank)])
      if (key.rfind("ec/", 0) == 0) durable.emplace(key, buf.clone());
    expect_identical(durable, snapshot(vc_full.host(rank), "ec/"),
                     "rank " + std::to_string(rank) + " vs full encode");
    // Recovered bytes equal the independently regenerated iteration-2 state.
    dnn::StateDict want = dnn::make_sparse_model_shard(spec, rank);
    dnn::apply_sparse_update(want, spec, rank, 1);
    dnn::apply_sparse_update(want, spec, rank, 2);
    ASSERT_EQ(socket_digests[static_cast<std::size_t>(rank)].size(), 1u);
    EXPECT_EQ(socket_digests[static_cast<std::size_t>(rank)][0], want.digest())
        << "rank " << rank;
  }
}

// ---------------------------------------------------------------------------
// Torn delta save: a peer dying mid-Δ-transfer must roll the attempted
// version back, leave the previous version loadable bit-exact, and never
// poison the base cache.
// ---------------------------------------------------------------------------

/// Decorator that throws CheckFailure (the dead-peer signal) on the Nth
/// send_buffers call — the delta path's Δ-transfer primitive — while
/// passing everything else through.
class SendBuffersBomb final : public cluster::Fabric {
 public:
  explicit SendBuffersBomb(cluster::Fabric& inner) : inner_(&inner) {}

  void arm(int fuse) {
    armed_ = true;
    fuse_ = fuse;
  }
  void disarm() { armed_ = false; }

  std::string fabric_name() const override { return inner_->fabric_name(); }
  int world_size() const override { return inner_->world_size(); }
  bool drives(int node) const override { return inner_->drives(node); }
  int self_rank() const override { return inner_->self_rank(); }
  cluster::Store& store(int node) override { return inner_->store(node); }
  void net_send(int src, int dst, std::size_t bytes,
                const std::string& label) override {
    inner_->net_send(src, dst, bytes, label);
  }
  void send_buffer(int src, int dst, const std::string& src_key,
                   const std::string& dst_key) override {
    inner_->send_buffer(src, dst, src_key, dst_key);
  }
  void send_buffers(
      int src, int dst,
      const std::vector<std::pair<std::string, std::string>>& pairs) override {
    if (armed_ && fuse_-- <= 0)
      throw CheckFailure("injected peer death mid-delta transfer");
    inner_->send_buffers(src, dst, pairs);
  }
  void broadcast(const std::vector<int>& nodes, int root,
                 const std::string& key) override {
    inner_->broadcast(nodes, root, key);
  }
  void all_gather(const std::vector<int>& nodes,
                  const std::function<std::string(int)>& key_of) override {
    inner_->all_gather(nodes, key_of);
  }
  void ring_all_reduce_xor(const std::vector<int>& nodes,
                           const std::string& key) override {
    inner_->ring_all_reduce_xor(nodes, key);
  }
  void remote_write(int node, const std::string& key,
                    const std::string& remote_key) override {
    inner_->remote_write(node, key, remote_key);
  }
  void remote_read(int node, const std::string& remote_key,
                   const std::string& key) override {
    inner_->remote_read(node, remote_key, key);
  }
  bool remote_contains(int node, const std::string& remote_key) override {
    return inner_->remote_contains(node, remote_key);
  }
  std::vector<std::string> remote_list(int node,
                                       const std::string& prefix) override {
    return inner_->remote_list(node, prefix);
  }
  void remote_erase(int node, const std::string& remote_key) override {
    inner_->remote_erase(node, remote_key);
  }
  obs::StatsRegistry& stats() override { return inner_->stats(); }
  void barrier(const std::vector<int>& nodes) override {
    inner_->barrier(nodes);
  }

 private:
  cluster::Fabric* inner_;
  bool armed_ = false;
  int fuse_ = 0;
};

TEST(DeltaEngine, TornDeltaSaveRollsBackAndRecoversBitExact) {
  const int g = 1, W = kNodes * g;
  const dnn::SparseUpdateSpec spec = sparse_spec(0.01);
  std::vector<dnn::StateDict> shards = sparse_shards(spec, W);

  cluster::VirtualCluster vc(vc_config(g));
  cluster::VirtualFabric inner(vc);
  SendBuffersBomb fabric(inner);
  core::FabricSession session(fabric, delta_config(true), g, 2);

  session.save(pointers(shards));  // v1: full
  for (int w = 0; w < W; ++w)
    dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], spec, w, 1);
  const ckpt::SaveReport r2 = session.save(pointers(shards));  // v2: delta
  ASSERT_EQ(stat_of(r2, "delta.save.count"), 1u);
  const auto want_v2 = digests_of(shards);

  // v3 dies on the first Δ transfer — after the manifests were exchanged
  // and the base rows cloned, i.e. genuinely mid-delta.
  for (int w = 0; w < W; ++w)
    dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], spec, w, 2);
  fabric.arm(0);
  EXPECT_THROW(session.save(pointers(shards)), CheckFailure);
  fabric.disarm();

  // Rollback scrubbed the torn version and all transient delta keys; the
  // base cache (still marked at v2, whose commit survives) is intact.
  for (int node = 0; node < kNodes; ++node) {
    EXPECT_TRUE(vc.host(node).keys_with_prefix("ec/3/").empty())
        << "node " << node;
    EXPECT_TRUE(vc.host(node).keys_with_prefix("tmp/").empty())
        << "node " << node;
    EXPECT_TRUE(vc.host(node).contains(core::keys::base_mark_key("")))
        << "node " << node;
  }

  // A fresh session (job restart) recovers v2 bit-exact…
  core::FabricSession fresh(fabric, delta_config(true), g, 2);
  std::vector<dnn::StateDict> out;
  const auto l = fresh.load(out);
  ASSERT_TRUE(l.report.success) << l.report.detail;
  EXPECT_EQ(l.version, 2);
  EXPECT_EQ(digests_of(out), want_v2);

  // …and the retried save commits (the surviving v2 base cache makes it a
  // delta save again), after which the new state loads bit-exact.
  const ckpt::SaveReport r3 = fresh.save(pointers(shards));
  EXPECT_EQ(stat_of(r3, "delta.save.count"), 1u);
  std::vector<dnn::StateDict> out3;
  const auto l3 = fresh.load(out3);
  ASSERT_TRUE(l3.report.success) << l3.report.detail;
  EXPECT_EQ(l3.version, 3);
  EXPECT_EQ(digests_of(out3), digests_of(shards));
}

}  // namespace
}  // namespace eccheck
