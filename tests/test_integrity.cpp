// Silent-corruption tolerance (checksum scrubbing) and tree reduction.
#include <gtest/gtest.h>

#include "core/eccheck_engine.hpp"
#include "dnn/checkpoint_gen.hpp"

namespace eccheck {
namespace {

using cluster::ClusterConfig;
using cluster::VirtualCluster;

ClusterConfig cluster_config(int nodes = 4, int gpus = 1) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.gpus_per_node = gpus;
  return cfg;
}

std::vector<dnn::StateDict> make_shards(int world) {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kBERT, 64, 1, world, "int");
  cfg.model.vocab = 256;
  cfg.parallelism = {1, world, 1};
  cfg.seed = 31;
  return dnn::make_sharded_checkpoint(cfg);
}

core::ECCheckConfig ec_config() {
  core::ECCheckConfig cfg;
  cfg.k = 2;
  cfg.m = 2;
  cfg.packet_size = kib(8);
  return cfg;
}

std::vector<std::uint64_t> digests_of(const std::vector<dnn::StateDict>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& sd : v) out.push_back(sd.digest());
  return out;
}

/// Flip one byte in the first chunk packet stored on `node`.
void corrupt_node_chunk(VirtualCluster& cluster, core::ECCheckEngine& engine,
                        int node, std::int64_t version) {
  auto plan = engine.plan_for(cluster);
  int row = plan.generator_row_of_node(node);
  std::string key = "ec/" + std::to_string(version) + "/row/" +
                    std::to_string(row) + "/0/0";
  Buffer tampered = cluster.host(node).get(key).clone();
  tampered.data()[3] ^= std::byte{0x40};
  cluster.host(node).put(key, std::move(tampered));
}

TEST(Integrity, SilentCorruptionIsDecodedAround) {
  VirtualCluster cluster(cluster_config());
  auto shards = make_shards(4);
  auto want = digests_of(shards);
  core::ECCheckEngine engine(ec_config());
  engine.save(cluster, shards, 1);

  corrupt_node_chunk(cluster, engine, 0, 1);  // bit-rot on a data node

  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_NE(load.detail.find("workflow B"), std::string::npos)
      << "corrupt chunk should be treated as an erasure";
  EXPECT_EQ(digests_of(out), want);
}

TEST(Integrity, CorruptionPlusFailureWithinBudgetRecovers) {
  VirtualCluster cluster(cluster_config());
  auto shards = make_shards(4);
  auto want = digests_of(shards);
  core::ECCheckEngine engine(ec_config());
  engine.save(cluster, shards, 1);

  corrupt_node_chunk(cluster, engine, 1, 1);
  cluster.kill(2);
  cluster.replace(2);  // corruption + crash = 2 erasures = m

  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_EQ(digests_of(out), want);
}

TEST(Integrity, TooMuchCorruptionFails) {
  VirtualCluster cluster(cluster_config());
  auto shards = make_shards(4);
  core::ECCheckEngine engine(ec_config());
  engine.save(cluster, shards, 1);
  for (int n : {0, 1, 2}) corrupt_node_chunk(cluster, engine, n, 1);
  std::vector<dnn::StateDict> out;
  EXPECT_FALSE(engine.load(cluster, 1, out).success);
}

TEST(Integrity, ScrubRewritesChecksumsAfterRecovery) {
  VirtualCluster cluster(cluster_config());
  auto shards = make_shards(4);
  auto want = digests_of(shards);
  core::ECCheckEngine engine(ec_config());
  engine.save(cluster, shards, 1);

  corrupt_node_chunk(cluster, engine, 3, 1);
  std::vector<dnn::StateDict> out;
  ASSERT_TRUE(engine.load(cluster, 1, out).success);

  // The corrupted chunk was rebuilt and re-checksummed: a second load with
  // a different failure must succeed without the original data.
  cluster.kill(0);
  cluster.kill(1);
  cluster.replace(0);
  cluster.replace(1);
  auto load2 = engine.load(cluster, 1, out);
  ASSERT_TRUE(load2.success) << load2.detail;
  EXPECT_EQ(digests_of(out), want);
}

TEST(Integrity, DisablingVerificationSkipsScrub) {
  VirtualCluster cluster(cluster_config());
  auto shards = make_shards(4);
  auto cfg = ec_config();
  cfg.verify_integrity = false;
  core::ECCheckEngine engine(cfg);
  engine.save(cluster, shards, 1);
  corrupt_node_chunk(cluster, engine, 0, 1);
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  // Without scrubbing the corruption goes unnoticed (workflow A) and the
  // restored bytes differ — exactly the failure mode verify_integrity stops.
  ASSERT_TRUE(load.success);
  EXPECT_NE(load.detail.find("workflow A"), std::string::npos);
  EXPECT_NE(digests_of(out), digests_of(shards));
}

TEST(TreeReduction, RecoversIdentically) {
  auto shards = make_shards(8);
  auto want = digests_of(shards);
  for (bool tree : {false, true}) {
    VirtualCluster cluster(cluster_config(8, 1));
    auto cfg = ec_config();
    cfg.k = 4;
    cfg.m = 4;
    cfg.tree_reduction = tree;
    core::ECCheckEngine engine(cfg);
    engine.save(cluster, shards, 1);
    for (int n : {0, 4, 6}) {
      cluster.kill(n);
      cluster.replace(n);
    }
    std::vector<dnn::StateDict> out;
    auto load = engine.load(cluster, 1, out);
    ASSERT_TRUE(load.success) << "tree=" << tree << ": " << load.detail;
    EXPECT_EQ(digests_of(out), want) << "tree=" << tree;
  }
}

TEST(TreeReduction, SameNetworkVolumeAsChain) {
  // The tree changes latency, not volume: k−1 partial transfers per
  // reduction either way.
  auto shards = make_shards(8);
  std::size_t bytes[2];
  int i = 0;
  for (bool tree : {false, true}) {
    VirtualCluster cluster(cluster_config(8, 1));
    auto cfg = ec_config();
    cfg.k = 4;
    cfg.m = 4;
    cfg.tree_reduction = tree;
    core::ECCheckEngine engine(cfg);
    bytes[i++] = engine.save(cluster, shards, 1).network_bytes;
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}


TEST(TreeReduction, ShorterCriticalPathAtLargeK) {
  // With few stripes the ⌈log2 k⌉-hop tree beats the (k−1)-hop chain on
  // latency; volumes are identical (SameNetworkVolumeAsChain).
  dnn::CheckpointGenConfig gen;
  gen.model = dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1, 16, "treek");
  gen.model.vocab = 128;
  gen.parallelism = {1, 16, 1};
  gen.seed = 77;
  auto shards = dnn::make_sharded_checkpoint(gen);

  Seconds totals[2];
  int i = 0;
  for (bool tree : {false, true}) {
    VirtualCluster cluster(cluster_config(16, 1));
    core::ECCheckConfig cfg;
    cfg.k = 8;
    cfg.m = 8;
    cfg.packet_size = mib(2);  // few large stripes → latency-bound
    cfg.tree_reduction = tree;
    core::ECCheckEngine engine(cfg);
    totals[i++] = engine.save(cluster, shards, 1).total_time;
  }
  EXPECT_LE(totals[1], totals[0] * 1.02)
      << "chain=" << totals[0] << " tree=" << totals[1];
}

}  // namespace
}  // namespace eccheck
