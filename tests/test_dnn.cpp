// DNN substrate tests: model zoo sizing, serialization round trips,
// synthetic sharded checkpoint structure and determinism.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "dnn/model_zoo.hpp"
#include "dnn/parallelism.hpp"
#include "dnn/serializer.hpp"

namespace eccheck::dnn {
namespace {

TEST(ModelZoo, Table1ParamCountsMatchLabels) {
  auto models = table1_models();
  ASSERT_EQ(models.size(), 9u);
  // Hidden 1600 / 48 layers ≈ 1.6B; 2560/64 ≈ 5.3B; 5120/64 ≈ 20B.
  for (const auto& m : models) {
    double b = static_cast<double>(m.param_count()) / 1e9;
    if (m.hidden == 1600) {
      EXPECT_NEAR(b, 1.6, 0.15) << m.label;
    }
    if (m.hidden == 2560) {
      EXPECT_NEAR(b, 5.3, 0.3) << m.label;
    }
    if (m.hidden == 5120) {
      EXPECT_NEAR(b, 20.0, 1.0) << m.label;
    }
  }
}

TEST(ModelZoo, Gpt2_345mIsRight) {
  EXPECT_NEAR(static_cast<double>(gpt2_345m().param_count()) / 1e6, 345, 40);
}

TEST(ModelZoo, CheckpointBytesScaleWithPolicy) {
  auto m = gpt2_345m();
  EXPECT_EQ(m.checkpoint_bytes(16.0), m.param_count() * 16);
  EXPECT_GT(m.checkpoint_bytes(16.0), m.checkpoint_bytes(2.0));
}

TEST(ModelZoo, ScaledDownShrinksQuadratically) {
  auto big = table1_models()[2];  // GPT-2 20B
  auto small = big.scaled_down(8.0);
  EXPECT_EQ(small.layers, big.layers);
  EXPECT_EQ(small.hidden % 64, 0);
  double ratio = static_cast<double>(big.param_count()) /
                 static_cast<double>(small.param_count());
  EXPECT_GT(ratio, 30.0);  // ~8² with vocab scaling
}

TEST(Parallelism, RankCoordsRoundTrip) {
  ParallelismSpec p{4, 4, 2};
  EXPECT_EQ(p.world_size(), 32);
  for (int w = 0; w < p.world_size(); ++w) {
    auto c = rank_coords(p, w);
    EXPECT_EQ(worker_of(p, c), w);
    EXPECT_LT(c.tp_rank, 4);
    EXPECT_LT(c.pp_stage, 4);
    EXPECT_LT(c.dp_rank, 2);
  }
}

TEST(Parallelism, TpIsFastestDimension) {
  ParallelismSpec p{4, 2, 1};
  EXPECT_EQ(rank_coords(p, 0).tp_rank, 0);
  EXPECT_EQ(rank_coords(p, 3).tp_rank, 3);
  EXPECT_EQ(rank_coords(p, 3).pp_stage, 0);
  EXPECT_EQ(rank_coords(p, 4).pp_stage, 1);
}

StateDict tiny_state_dict() {
  StateDict sd;
  sd.metadata()["iteration"] = std::int64_t{123};
  sd.metadata()["lr"] = 0.001;
  sd.metadata()["name"] = std::string("tiny");
  Tensor t(DType::kF16, {4, 8});
  fill_random(t.bytes(), 1);
  sd.add_tensor("layer.weight", std::move(t));
  Tensor b(DType::kF32, {8});
  fill_random(b.bytes(), 2);
  sd.add_tensor("layer.bias", std::move(b));
  return sd;
}

TEST(Serializer, FullStateDictRoundTrip) {
  StateDict sd = tiny_state_dict();
  Buffer blob = serialize_state_dict(sd);
  StateDict back = deserialize_state_dict(blob.span());
  EXPECT_EQ(sd, back);
  EXPECT_EQ(sd.digest(), back.digest());
}

TEST(Serializer, MetadataRoundTrip) {
  StateDict sd = tiny_state_dict();
  Buffer blob = serialize_metadata(sd.metadata());
  auto meta = deserialize_metadata(blob.span());
  EXPECT_EQ(meta, sd.metadata());
}

TEST(Serializer, TensorKeysRoundTripAndSkeleton) {
  StateDict sd = tiny_state_dict();
  Buffer blob = serialize_tensor_keys(sd);
  auto keys = deserialize_tensor_keys(blob.span());
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].key, "layer.weight");
  EXPECT_EQ(keys[0].dtype, DType::kF16);
  EXPECT_EQ(keys[0].shape, (std::vector<std::int64_t>{4, 8}));
  EXPECT_EQ(keys[0].nbytes(), 64u);

  StateDict skel = make_skeleton(sd.metadata(), keys);
  ASSERT_EQ(skel.tensors().size(), 2u);
  EXPECT_EQ(skel.tensors()[1].tensor.nbytes(), 32u);
  EXPECT_EQ(skel.metadata(), sd.metadata());
}

TEST(Serializer, MetadataAndKeysAreTinyVsTensorData) {
  // The §III-C observation: both small components are a vanishing fraction.
  CheckpointGenConfig cfg;
  cfg.model = make_model(ModelFamily::kGPT2, 256, 4, 4, "unit");
  cfg.parallelism = {2, 2, 1};
  StateDict sd = make_worker_state_dict(cfg, 0);
  Buffer meta = serialize_metadata(sd.metadata());
  Buffer keys = serialize_tensor_keys(sd);
  EXPECT_LT(meta.size() + keys.size(), sd.tensor_bytes() / 50);
}

TEST(Serializer, CorruptMagicRejected) {
  StateDict sd = tiny_state_dict();
  Buffer blob = serialize_state_dict(sd);
  blob.data()[0] ^= std::byte{0xff};
  EXPECT_THROW(deserialize_state_dict(blob.span()), CheckFailure);
}

TEST(Serializer, TruncationRejected) {
  StateDict sd = tiny_state_dict();
  Buffer blob = serialize_state_dict(sd);
  EXPECT_THROW(
      deserialize_state_dict(blob.subspan(0, blob.size() - 8)),
      CheckFailure);
}

TEST(Digest, SensitiveToPayloadAndMetadata) {
  StateDict a = tiny_state_dict();
  StateDict b = tiny_state_dict();
  EXPECT_EQ(a.digest(), b.digest());
  b.metadata()["iteration"] = std::int64_t{124};
  EXPECT_NE(a.digest(), b.digest());
  StateDict c = tiny_state_dict();
  c.tensors()[0].tensor.bytes()[0] ^= std::byte{1};
  EXPECT_NE(a.digest(), c.digest());
}

CheckpointGenConfig small_gen() {
  CheckpointGenConfig cfg;
  cfg.model = make_model(ModelFamily::kGPT2, 128, 2, 8, "gen-test");
  cfg.parallelism = {2, 4, 1};
  cfg.seed = 7;
  return cfg;
}

TEST(CheckpointGen, Deterministic) {
  auto cfg = small_gen();
  EXPECT_EQ(make_worker_state_dict(cfg, 3).digest(),
            make_worker_state_dict(cfg, 3).digest());
  auto cfg2 = cfg;
  cfg2.seed = 8;
  EXPECT_NE(make_worker_state_dict(cfg, 3).digest(),
            make_worker_state_dict(cfg2, 3).digest());
}

TEST(CheckpointGen, WorkersDiffer) {
  auto cfg = small_gen();
  EXPECT_NE(make_worker_state_dict(cfg, 0).digest(),
            make_worker_state_dict(cfg, 1).digest());
}

TEST(CheckpointGen, StructureFollowsParallelism) {
  auto cfg = small_gen();  // tp=2, pp=4, 8 layers → 2 layers/stage
  auto shards = make_sharded_checkpoint(cfg);
  ASSERT_EQ(shards.size(), 8u);

  auto has_key_prefix = [](const StateDict& sd, const std::string& p) {
    for (const auto& e : sd.tensors())
      if (e.key.rfind(p, 0) == 0) return true;
    return false;
  };
  // Embeddings only on stage 0 (workers 0,1); final LN only on stage 3.
  EXPECT_TRUE(has_key_prefix(shards[0], "model.embedding"));
  EXPECT_TRUE(has_key_prefix(shards[1], "model.embedding"));
  EXPECT_FALSE(has_key_prefix(shards[2], "model.embedding"));
  EXPECT_TRUE(has_key_prefix(shards[7], "model.final_layernorm"));
  EXPECT_FALSE(has_key_prefix(shards[0], "model.final_layernorm"));
  // Every worker carries RNG state and optimizer moments.
  for (const auto& sd : shards) {
    EXPECT_TRUE(has_key_prefix(sd, "rng."));
    EXPECT_TRUE(has_key_prefix(sd, "optimizer.exp_avg."));
  }
}

TEST(CheckpointGen, LayerRangesPartitionTheModel) {
  auto cfg = small_gen();
  auto shards = make_sharded_checkpoint(cfg);
  // Count distinct layer indices mentioned across all shards of dp=0, tp=0.
  std::set<int> layers;
  for (int s = 0; s < 4; ++s) {
    const auto& sd = shards[static_cast<std::size_t>(worker_of(
        cfg.parallelism, {0, s, 0}))];
    for (const auto& e : sd.tensors()) {
      auto pos = e.key.find("layers.");
      if (pos == std::string::npos) continue;
      layers.insert(std::stoi(e.key.substr(pos + 7)));
    }
  }
  EXPECT_EQ(layers.size(), 8u);
  EXPECT_EQ(*layers.begin(), 0);
  EXPECT_EQ(*layers.rbegin(), 7);
}

TEST(CheckpointGen, TensorParallelShardsSmaller) {
  auto cfg = small_gen();
  auto cfg_tp1 = cfg;
  cfg_tp1.parallelism = {1, 4, 1};
  auto sharded = make_worker_state_dict(cfg, 2);      // tp=2
  auto full = make_worker_state_dict(cfg_tp1, 1);     // same stage, tp=1
  EXPECT_LT(sharded.tensor_bytes(), full.tensor_bytes());
}

TEST(CheckpointGen, OptimizerStatesToggle) {
  auto cfg = small_gen();
  auto with = make_worker_state_dict(cfg, 0).tensor_bytes();
  cfg.optimizer_states = false;
  auto without = make_worker_state_dict(cfg, 0).tensor_bytes();
  EXPECT_GT(with, 3 * without);  // f32 m+v ≈ 4× the f16 weights
}

TEST(CheckpointGen, ShardDigestsMatchFullGeneration) {
  auto cfg = small_gen();
  auto digests = shard_digests(cfg);
  auto shards = make_sharded_checkpoint(cfg);
  ASSERT_EQ(digests.size(), shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i)
    EXPECT_EQ(digests[i], shards[i].digest());
}


TEST(CheckpointGen, DataParallelReplicasShareTensorBytes) {
  auto cfg = small_gen();
  cfg.parallelism = {2, 2, 2};  // world = 8, two dp replicas
  auto shards = make_sharded_checkpoint(cfg);
  // Worker and its dp=1 counterpart hold identical model tensors...
  int a = worker_of(cfg.parallelism, {0, 1, 0});
  int b = worker_of(cfg.parallelism, {0, 1, 1});
  const auto& sa = shards[static_cast<std::size_t>(a)];
  const auto& sb = shards[static_cast<std::size_t>(b)];
  ASSERT_EQ(sa.tensors().size(), sb.tensors().size());
  for (std::size_t i = 0; i < sa.tensors().size(); ++i) {
    const auto& ta = sa.tensors()[i];
    const auto& tb = sb.tensors()[i];
    if (ta.key.rfind("rng.", 0) == 0) {
      // ...except the per-worker RNG state.
      EXPECT_NE(0, std::memcmp(ta.tensor.bytes().data(),
                               tb.tensor.bytes().data(), ta.tensor.nbytes()));
    } else {
      EXPECT_EQ(0, std::memcmp(ta.tensor.bytes().data(),
                               tb.tensor.bytes().data(), ta.tensor.nbytes()))
          << ta.key;
    }
  }
}

TEST(CheckpointGen, FsdpShardsAreFlatAndSmaller) {
  auto cfg = small_gen();
  cfg.parallelism = {2, 2, 2};
  auto plain = make_worker_state_dict(cfg, 0);
  cfg.fsdp = true;
  auto fsdp = make_worker_state_dict(cfg, 0);
  // Roughly half the bytes (1/dp), flattened to 1-D.
  EXPECT_LT(fsdp.tensor_bytes(), plain.tensor_bytes() * 3 / 5);
  for (const auto& e : fsdp.tensors()) {
    if (e.key.rfind("rng.", 0) == 0) continue;
    EXPECT_EQ(e.tensor.shape().size(), 1u) << e.key;
  }
  EXPECT_EQ(std::get<std::int64_t>(fsdp.metadata().at("fsdp")), 1);
}

TEST(CheckpointGen, FsdpReplicasHoldDistinctSlices) {
  auto cfg = small_gen();
  cfg.parallelism = {2, 2, 2};
  cfg.fsdp = true;
  auto shards = make_sharded_checkpoint(cfg);
  int a = worker_of(cfg.parallelism, {0, 1, 0});
  int b = worker_of(cfg.parallelism, {0, 1, 1});
  EXPECT_NE(shards[static_cast<std::size_t>(a)].digest(),
            shards[static_cast<std::size_t>(b)].digest());
}

}  // namespace
}  // namespace eccheck::dnn
