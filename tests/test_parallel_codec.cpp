// ParallelCodec: thread-pool sliced coding must be bit-identical to the
// serial CrsCodec paths.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ec/parallel_codec.hpp"

namespace eccheck::ec {
namespace {

std::vector<Buffer> make_packets(int n, std::size_t size,
                                 std::uint64_t seed = 1) {
  std::vector<Buffer> v;
  for (int i = 0; i < n; ++i) {
    v.emplace_back(size, Buffer::Init::kUninitialized);
    fill_random(v.back().span(), seed + static_cast<std::uint64_t>(i));
  }
  return v;
}

struct Case {
  int k, m, w;
  KernelMode mode;
  std::size_t packet;
  std::size_t slice;
};

class ParallelCodecTest : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelCodecTest, EncodeMatchesSerial) {
  const auto c = GetParam();
  CrsCodec codec(c.k, c.m, c.w, c.mode);
  runtime::ThreadPool pool(4);
  ParallelCodec pc(codec, pool, c.slice);

  auto data = make_packets(c.k, c.packet);
  std::vector<ByteSpan> in;
  for (auto& d : data) in.push_back(d.span());

  auto serial = make_packets(c.m, c.packet, 100);
  auto parallel = make_packets(c.m, c.packet, 200);
  std::vector<MutableByteSpan> so, po;
  for (auto& p : serial) so.push_back(p.span());
  for (auto& p : parallel) po.push_back(p.span());

  codec.encode(in, so);
  pc.encode(in, po);
  for (int r = 0; r < c.m; ++r)
    EXPECT_EQ(serial[static_cast<std::size_t>(r)],
              parallel[static_cast<std::size_t>(r)])
        << "row " << r;
}

TEST_P(ParallelCodecTest, EncodeRowMatchesAccumulation) {
  const auto c = GetParam();
  CrsCodec codec(c.k, c.m, c.w, c.mode);
  runtime::ThreadPool pool(3);
  ParallelCodec pc(codec, pool, c.slice);

  auto data = make_packets(c.k, c.packet, 7);
  std::vector<ByteSpan> in;
  for (auto& d : data) in.push_back(d.span());

  for (int row : {0, c.k, c.k + c.m - 1}) {
    Buffer serial(c.packet, Buffer::Init::kUninitialized);
    for (int j = 0; j < c.k; ++j)
      codec.encode_partial(row, j, in[static_cast<std::size_t>(j)],
                           serial.span(), j != 0);
    Buffer parallel(c.packet, Buffer::Init::kUninitialized);
    pc.encode_row(row, in, parallel.span());
    EXPECT_EQ(serial, parallel) << "row " << row;
  }
}

TEST_P(ParallelCodecTest, ApplyMatrixMatchesSerial) {
  const auto c = GetParam();
  CrsCodec codec(c.k, c.m, c.w, c.mode);
  runtime::ThreadPool pool(4);
  ParallelCodec pc(codec, pool, c.slice);

  auto data = make_packets(c.k, c.packet, 11);
  std::vector<ByteSpan> in;
  for (auto& d : data) in.push_back(d.span());

  // Any interesting matrix: the inverse used by decode.
  std::vector<int> rows;
  for (int r = 0; r < c.k; ++r) rows.push_back(c.m > 0 ? c.k + r % c.m : r);
  std::vector<int> unique_rows;
  for (int r = 0; r < c.k + c.m && static_cast<int>(unique_rows.size()) < c.k;
       ++r)
    unique_rows.push_back(c.k + c.m - 1 - r);
  GfMatrix t = codec.reconstruction_matrix(unique_rows, {0, 1});

  auto serial = make_packets(2, c.packet, 300);
  auto parallel = make_packets(2, c.packet, 400);
  std::vector<MutableByteSpan> so{serial[0].span(), serial[1].span()};
  std::vector<MutableByteSpan> po{parallel[0].span(), parallel[1].span()};
  std::vector<ByteSpan> chunk_in;
  for (int i = 0; i < c.k; ++i) chunk_in.push_back(in[static_cast<std::size_t>(i)]);
  codec.apply_matrix(t, chunk_in, so);
  pc.apply_matrix(t, chunk_in, po);
  EXPECT_EQ(serial[0], parallel[0]);
  EXPECT_EQ(serial[1], parallel[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParallelCodecTest,
    ::testing::Values(
        Case{2, 2, 8, KernelMode::kGfTable, 64 * 1024, 4096},
        Case{4, 2, 8, KernelMode::kGfTable, 64 * 1024, 7777},  // odd slice
        Case{4, 4, 16, KernelMode::kGfTable, 32 * 1024, 1001}, // w=16 rounding
        Case{3, 2, 8, KernelMode::kXorBitmatrix, 64 * 1024, 4096},  // fallback
        Case{2, 2, 8, KernelMode::kGfTable, 1024, 64 * 1024},  // < one slice
        // Odd / prime packet sizes straddling the slice boundary: the last
        // slice is a short remainder (1 or 3 bytes), which exercises the
        // lo/hi clamp in for_each_slice.
        Case{2, 2, 8, KernelMode::kGfTable, 4095, 4096},   // slice − 1
        Case{2, 2, 8, KernelMode::kGfTable, 4097, 4096},   // slice + 1
        Case{4, 2, 8, KernelMode::kGfTable, 4099, 4096},   // prime, + 3
        Case{3, 3, 8, KernelMode::kGfTable, 12289, 4096},  // prime, 3 slices
        Case{2, 2, 8, KernelMode::kGfTable, 101, 4096},    // prime < 1 slice
        // w=16 symbols are 2 bytes: smallest legal straddles are ± 2.
        Case{2, 2, 16, KernelMode::kGfTable, 4094, 4096},  // slice − 2
        Case{4, 4, 16, KernelMode::kGfTable, 4098, 4096},  // slice + 2
        // Bitmatrix granularity is w·8 = 64 bytes; the serial fallback must
        // still accept non-slice-aligned packet counts.
        Case{3, 2, 8, KernelMode::kXorBitmatrix, 4096 + 64, 4096},
        Case{3, 2, 8, KernelMode::kXorBitmatrix, 192, 4096}),
    [](const auto& info) {
      const auto& c = info.param;
      return "k" + std::to_string(c.k) + "m" + std::to_string(c.m) + "w" +
             std::to_string(c.w) +
             (c.mode == KernelMode::kGfTable ? "_table" : "_xor") + "_p" +
             std::to_string(c.packet) + "_s" + std::to_string(c.slice);
    });

TEST(ParallelCodec, SliceRoundedToGranularity) {
  CrsCodec codec(2, 2, 16);
  runtime::ThreadPool pool(2);
  // Odd slice size on a 2-byte-symbol field must still produce exact
  // results (constructor rounds it up).
  ParallelCodec pc(codec, pool, 1001);
  auto data = make_packets(2, 8192, 5);
  std::vector<ByteSpan> in{data[0].span(), data[1].span()};
  Buffer serial(8192, Buffer::Init::kUninitialized);
  for (int j = 0; j < 2; ++j)
    codec.encode_partial(2, j, in[static_cast<std::size_t>(j)], serial.span(),
                         j != 0);
  Buffer parallel(8192, Buffer::Init::kUninitialized);
  pc.encode_row(2, in, parallel.span());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace eccheck::ec
