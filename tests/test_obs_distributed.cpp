// Distributed observability (src/obs/distributed + the tracer's trace
// contexts + the frame-level trace block): wire round-trip of the trace
// context, span-id chaining and adoption, bounded tracer buffers, lossless
// histogram merging, ping-pong clock-offset estimation, and the
// merged-trace oracle itself — three tracer "processes" linked by
// parent/child span ids must merge into one valid, monotone, cross-linked
// Chrome trace, and the oracle must reject the ways a merge can go wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/distributed.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "obs/tracer.hpp"

namespace eccheck {
namespace {

// ---------------------------------------------------------------------------
// Wire format: the trace-context block on frames.
// ---------------------------------------------------------------------------

TEST(FrameTrace, UntracedHeaderIsByteIdenticalToLegacy) {
  net::FrameHeader h;
  h.type = net::FrameType::kPut;
  h.src_rank = 3;
  h.key = "chunk/5";
  h.payload_len = 4096;
  h.payload_crc = 0x1234'5678'9abc'def0ull;

  std::uint8_t buf[net::kFrameHeaderBytes];
  net::encode_frame_header(h, buf);

  std::uint32_t key_len = 0;
  bool has_trace = true;
  const net::FrameHeader back =
      net::decode_frame_header(buf, &key_len, &has_trace);
  EXPECT_FALSE(has_trace) << "trace.trace_id==0 must not set the flag";
  EXPECT_EQ(back.type, h.type);
  EXPECT_EQ(back.src_rank, h.src_rank);
  EXPECT_EQ(key_len, h.key.size());
  EXPECT_EQ(back.trace.trace_id, 0u);
}

TEST(FrameTrace, ContextRoundTripsAndStaysWithinBudget) {
  static_assert(net::kTraceContextBytes <= 32,
                "trace context must stay within the 32-byte budget");
  net::FrameHeader h;
  h.type = net::FrameType::kSegment;
  h.src_rank = 1;
  h.aux = 7;
  h.trace.trace_id = 0xfeed'beef'0000'0001ull;
  h.trace.parent_span = 0x0123'4567'89ab'cdefull;
  h.trace.op = static_cast<std::uint32_t>(net::FrameType::kSegment);

  std::uint8_t buf[net::kFrameHeaderBytes + net::kTraceContextBytes];
  net::encode_frame_header(h, buf);
  net::encode_trace_context(h.trace, buf + net::kFrameHeaderBytes);

  std::uint32_t key_len = 0;
  bool has_trace = false;
  const net::FrameHeader back =
      net::decode_frame_header(buf, &key_len, &has_trace);
  ASSERT_TRUE(has_trace);
  EXPECT_EQ(back.type, net::FrameType::kSegment) << "flag bit must be masked";
  const net::WireTraceContext tc =
      net::decode_trace_context(buf + net::kFrameHeaderBytes);
  EXPECT_EQ(tc.trace_id, h.trace.trace_id);
  EXPECT_EQ(tc.parent_span, h.trace.parent_span);
  EXPECT_EQ(tc.op, h.trace.op);
  EXPECT_EQ(tc.flags, 0u);
}

// ---------------------------------------------------------------------------
// Trace contexts: chaining, adoption, id allocation.
// ---------------------------------------------------------------------------

TEST(TraceContext, NestedSpansChainUnderTheActiveContext) {
  obs::Tracer t;
  t.enable();
  const std::uint64_t trace = obs::Tracer::new_trace_id();
  ASSERT_NE(trace, 0u);
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    obs::ScopedTraceContext ctx(trace, 0);
    obs::ScopedSpan outer(t, "outer");
    outer_id = outer.span_id();
    ASSERT_NE(outer_id, 0u);
    EXPECT_EQ(obs::current_trace_context().span_id, outer_id);
    {
      obs::ScopedSpan inner(t, "inner");
      inner_id = inner.span_id();
      EXPECT_NE(inner_id, outer_id);
      EXPECT_EQ(obs::current_trace_context().span_id, inner_id);
    }
    EXPECT_EQ(obs::current_trace_context().span_id, outer_id)
        << "inner span must restore its parent as innermost";
  }
  EXPECT_EQ(obs::current_trace_context().trace_id, 0u);

  bool saw_outer = false, saw_inner = false;
  for (const obs::Tracer::ThreadTrack& track : t.snapshot())
    for (const obs::Tracer::SpanRec& s : track.spans) {
      if (s.name == "outer") {
        saw_outer = true;
        EXPECT_EQ(s.trace_id, trace);
        EXPECT_EQ(s.span_id, outer_id);
        EXPECT_EQ(s.parent_span, 0u);
      } else if (s.name == "inner") {
        saw_inner = true;
        EXPECT_EQ(s.trace_id, trace);
        EXPECT_EQ(s.parent_span, outer_id);
      }
    }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(TraceContext, SpansOutsideAnyContextStayUnlinked) {
  obs::Tracer t;
  t.enable();
  { obs::ScopedSpan s(t, "plain"); EXPECT_EQ(s.span_id(), 0u); }
  const auto tracks = t.snapshot();
  ASSERT_FALSE(tracks.empty());
  for (const auto& track : tracks)
    for (const auto& s : track.spans) EXPECT_EQ(s.trace_id, 0u);
}

TEST(TraceContext, AdoptLinksARemoteParent) {
  obs::Tracer t;
  t.enable();
  const std::uint64_t trace = obs::Tracer::new_trace_id();
  const std::uint64_t remote_parent = obs::Tracer::new_span_id();
  {
    obs::ScopedSpan recv(t, "net.recv");
    EXPECT_EQ(recv.span_id(), 0u);  // no local context
    recv.adopt(trace, remote_parent);
    EXPECT_NE(recv.span_id(), 0u);
  }
  const auto tracks = t.snapshot();
  bool found = false;
  for (const auto& track : tracks)
    for (const auto& s : track.spans)
      if (s.name == "net.recv") {
        found = true;
        EXPECT_EQ(s.trace_id, trace);
        EXPECT_EQ(s.parent_span, remote_parent);
      }
  EXPECT_TRUE(found);
}

TEST(TraceContext, IdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kIds = 200;
  std::vector<std::vector<std::uint64_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&per_thread, i] {
      for (int n = 0; n < kIds; ++n)
        per_thread[static_cast<std::size_t>(i)].push_back(
            obs::Tracer::new_span_id());
    });
  for (auto& th : threads) th.join();
  std::vector<std::uint64_t> all;
  for (const auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(std::find(all.begin(), all.end(), 0u), all.end());
}

// ---------------------------------------------------------------------------
// Bounded buffers.
// ---------------------------------------------------------------------------

TEST(TracerBounds, CapacityCapsBuffersAndCountsDrops) {
  obs::Tracer t;
  t.enable();
  t.set_span_capacity(16);
  for (int i = 0; i < 100; ++i) obs::ScopedSpan s(t, "spin");
  EXPECT_EQ(t.span_count(), 16u);
  EXPECT_EQ(t.dropped_count(), 84u);
  // Counters have their own buffer under the same bound.
  for (int i = 0; i < 20; ++i) t.record_counter("depth", i);
  EXPECT_EQ(t.dropped_count(), 88u);

  t.clear();
  EXPECT_EQ(t.span_count(), 0u);
  EXPECT_EQ(t.dropped_count(), 0u);
  { obs::ScopedSpan s(t, "after_clear"); }
  EXPECT_EQ(t.span_count(), 1u);
}

TEST(TracerBounds, DroppedCountRidesTheSnapshot) {
  obs::Tracer t;
  t.enable();
  t.set_span_capacity(2);
  for (int i = 0; i < 5; ++i) obs::ScopedSpan s(t, "spin");
  const std::string snap = obs::serialize_snapshot(t, nullptr, "p");
  obs::StatsRegistry agg;
  std::string err;
  ASSERT_TRUE(obs::accumulate_snapshot_stats(snap, agg, &err)) << err;
  EXPECT_EQ(agg.counter("obs.tracer.dropped"), 3u);
}

// ---------------------------------------------------------------------------
// Histogram merging.
// ---------------------------------------------------------------------------

TEST(HistMerge, MergeMatchesSingleStreamWelford) {
  obs::HistSummary a, b, whole;
  const std::vector<double> xs = {0.5, 1.25, -3.0, 42.0, 0.0, 7.5, 7.5, -0.125};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).observe(xs[i]);
    whole.observe(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count, whole.count);
  EXPECT_DOUBLE_EQ(a.sum, whole.sum);
  EXPECT_DOUBLE_EQ(a.min, whole.min);
  EXPECT_DOUBLE_EQ(a.max, whole.max);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-9);
}

TEST(HistMerge, EmptySidesAreIdentity) {
  obs::HistSummary empty, filled;
  filled.observe(3.0);
  filled.observe(5.0);
  obs::HistSummary lhs = filled;
  lhs.merge(empty);
  EXPECT_EQ(lhs.count, 2u);
  EXPECT_DOUBLE_EQ(lhs.mean(), 4.0);
  obs::HistSummary rhs = empty;
  rhs.merge(filled);
  EXPECT_EQ(rhs.count, 2u);
  EXPECT_DOUBLE_EQ(rhs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rhs.min, 3.0);
  EXPECT_DOUBLE_EQ(rhs.max, 5.0);
}

TEST(HistMerge, JsonRoundTripMergesLosslessly) {
  obs::StatsRegistry src;
  for (double v : {0.01, 0.02, 0.04, 0.08}) src.observe("save.latency_s", v);
  src.add("net.send.count", 10);
  src.set_gauge("svc.jobs", 2);

  obs::StatsRegistry agg;
  std::string err;
  // Accumulate the same dump twice: counters double, histograms hold the
  // union of both sample sets.
  ASSERT_TRUE(obs::accumulate_snapshot_stats(src.to_json(), agg, &err)) << err;
  ASSERT_TRUE(obs::accumulate_snapshot_stats(src.to_json(), agg, &err)) << err;
  EXPECT_EQ(agg.counter("net.send.count"), 20u);
  EXPECT_DOUBLE_EQ(agg.gauge("svc.jobs"), 2.0);
  const obs::HistSummary h = agg.histograms().at("save.latency_s");
  EXPECT_EQ(h.count, 8u);
  // Oracle: observe every sample twice into one stream.
  obs::HistSummary twice;
  for (int round = 0; round < 2; ++round)
    for (double v : {0.01, 0.02, 0.04, 0.08}) twice.observe(v);
  EXPECT_NEAR(h.mean(), twice.mean(), 1e-12);
  EXPECT_NEAR(h.stddev(), twice.stddev(), 1e-9)
      << "m2 must survive the JSON round trip";
}

// ---------------------------------------------------------------------------
// Clock-offset estimation.
// ---------------------------------------------------------------------------

TEST(ClockOffset, PicksTheMidpointOfTheMinimumRttSample) {
  std::vector<obs::ClockSample> samples;
  // Ground truth: remote = local + 1000. The tight exchange sees it
  // exactly; the noisy ones are biased by asymmetric delays.
  samples.push_back({5000, 9000, 10500});  // rtt 4000, biased
  samples.push_back({1000, 1100, 2050});   // rtt 100 → offset 1000
  samples.push_back({3000, 3500, 4600});   // rtt 500, biased the other way
  EXPECT_EQ(obs::estimate_clock_offset_ns(samples), 1000);
}

TEST(ClockOffset, EmptyAndNegativeRttSamplesAreHandled) {
  EXPECT_EQ(obs::estimate_clock_offset_ns({}), 0);
  std::vector<obs::ClockSample> bad;
  bad.push_back({100, 50, 999});  // negative rtt: clock glitch, skipped
  EXPECT_EQ(obs::estimate_clock_offset_ns(bad), 0);
  bad.push_back({0, 10, -495});  // remote clock far behind: offset −500
  EXPECT_EQ(obs::estimate_clock_offset_ns(bad), -500);
}

// ---------------------------------------------------------------------------
// The merged-trace pipeline and its oracle.
// ---------------------------------------------------------------------------

/// Three tracers standing in for three processes, linked
/// coordinator → worker → peer exactly like the service does it: the
/// sender's innermost span id travels (here by hand, on the wire in prod)
/// and the receiver opens its spans under an adopted context.
struct ThreeProcessTrace {
  obs::Tracer coord, worker, peer;
  std::uint64_t trace_id = 0;

  ThreeProcessTrace() {
    coord.enable();
    worker.enable();
    peer.enable();
    trace_id = obs::Tracer::new_trace_id();
    std::uint64_t send_id = 0;
    {
      obs::ScopedTraceContext ctx(trace_id, 0);
      obs::ScopedSpan root(coord, "coord.save");
      obs::ScopedSpan send(coord, "net.send");
      send_id = send.span_id();
    }
    std::uint64_t relay_id = 0;
    {
      obs::ScopedTraceContext ctx(trace_id, send_id);
      obs::ScopedSpan handle(worker, "worker.handle");
      relay_id = handle.span_id();
      obs::ScopedSpan coll(worker, "fabric.broadcast");
    }
    {
      obs::ScopedTraceContext ctx(trace_id, relay_id);
      obs::ScopedSpan recv(peer, "net.recv");
    }
  }

  std::string merged(std::int64_t shift_worker_ns,
                     std::int64_t shift_peer_ns) const {
    obs::ChromeTraceWriter w;
    std::string err;
    EXPECT_TRUE(obs::append_snapshot_to_trace(
        w, obs::serialize_snapshot(coord, nullptr, "coordinator"), "", 0,
        &err))
        << err;
    EXPECT_TRUE(obs::append_snapshot_to_trace(
        w, obs::serialize_snapshot(worker, nullptr, "worker0"), "",
        shift_worker_ns, &err))
        << err;
    EXPECT_TRUE(obs::append_snapshot_to_trace(
        w, obs::serialize_snapshot(peer, nullptr, "worker1"), "",
        shift_peer_ns, &err))
        << err;
    std::ostringstream os;
    w.write(os);
    return os.str();
  }
};

TEST(MergedTrace, ThreeProcessesLinkResolveAndStayMonotone) {
  const ThreeProcessTrace t;
  const std::string trace = t.merged(0, 0);
  const obs::MergedTraceCheck chk =
      obs::check_merged_trace(trace, /*min_processes=*/3,
                              /*require_all_resolved=*/true);
  EXPECT_TRUE(chk.ok) << chk.error;
  EXPECT_TRUE(chk.valid_json);
  EXPECT_EQ(chk.processes, 3u);
  EXPECT_GE(chk.spans, 5u);
  EXPECT_EQ(chk.linked_spans, 5u);
  EXPECT_EQ(chk.unresolved_parents, 0u);
  EXPECT_GE(chk.cross_process_links, 2u)
      << "coordinator→worker and worker→peer edges must cross processes";
}

TEST(MergedTrace, OffsetCorrectionPreservesMonotonicity) {
  const ThreeProcessTrace t;
  // Large, distinct per-process shifts — the per-track invariant must be
  // unaffected because each process moves by one constant.
  const std::string trace = t.merged(7'000'000'000ll, -3'000'000'000ll);
  const obs::MergedTraceCheck chk = obs::check_merged_trace(trace, 3, true);
  EXPECT_TRUE(chk.ok) << chk.error;
  EXPECT_TRUE(chk.monotone);
}

TEST(MergedTrace, OracleRejectsTooFewProcessesAndRegressions) {
  const ThreeProcessTrace t;
  const std::string trace = t.merged(0, 0);
  const obs::MergedTraceCheck few = obs::check_merged_trace(trace, 4, false);
  EXPECT_FALSE(few.ok);
  EXPECT_NE(few.error.find("processes"), std::string::npos);

  obs::ChromeTraceWriter w;
  const int pid = w.begin_process("p0");
  w.add_complete(pid, 0, "a", 100.0, 10.0, "\"span\":\"0000000000000001\"");
  w.add_complete(pid, 0, "b", 20.0, 10.0);  // regresses on the same track
  const int pid2 = w.begin_process("p1");
  w.add_complete(pid2, 0, "c", 5.0, 1.0,
                 "\"span\":\"0000000000000002\","
                 "\"parent\":\"0000000000000001\"");
  std::ostringstream os;
  w.write(os);
  const obs::MergedTraceCheck chk = obs::check_merged_trace(os.str(), 2, true);
  EXPECT_FALSE(chk.ok);
  EXPECT_FALSE(chk.monotone);
}

TEST(MergedTrace, UnresolvedParentsFailOnlyWhenRequired) {
  obs::Tracer a, b;
  a.enable();
  b.enable();
  const std::uint64_t trace_id = obs::Tracer::new_trace_id();
  std::uint64_t a_id = 0;
  {
    obs::ScopedTraceContext ctx(trace_id, 0);
    obs::ScopedSpan root(a, "root");
    a_id = root.span_id();
  }
  {
    obs::ScopedTraceContext ctx(trace_id, a_id);
    obs::ScopedSpan linked(b, "linked");
  }
  {
    // Parent minted by a "killed" process whose buffer never made it.
    obs::ScopedTraceContext ctx(trace_id, obs::Tracer::new_span_id());
    obs::ScopedSpan orphan(b, "orphan");
  }
  obs::ChromeTraceWriter w;
  std::string err;
  ASSERT_TRUE(obs::append_snapshot_to_trace(
      w, obs::serialize_snapshot(a, nullptr, "alive"), "", 0, &err));
  ASSERT_TRUE(obs::append_snapshot_to_trace(
      w, obs::serialize_snapshot(b, nullptr, "survivor"), "", 0, &err));
  std::ostringstream os;
  w.write(os);

  const obs::MergedTraceCheck strict = obs::check_merged_trace(os.str(), 2, true);
  EXPECT_FALSE(strict.ok);
  EXPECT_EQ(strict.unresolved_parents, 1u);
  EXPECT_NE(strict.error.find("resolve"), std::string::npos);

  const obs::MergedTraceCheck lenient =
      obs::check_merged_trace(os.str(), 2, false);
  EXPECT_TRUE(lenient.ok) << lenient.error;
  EXPECT_EQ(lenient.resolved_parents, 1u);
  EXPECT_EQ(lenient.cross_process_links, 1u);
}

TEST(MergedTrace, SnapshotCarriesStatsAndClockAnchor) {
  obs::Tracer t;
  t.enable();
  { obs::ScopedSpan s(t, "work", /*bytes=*/1 << 20); }
  obs::StatsRegistry reg;
  reg.add("net.send.count", 5);
  const std::string snap = obs::serialize_snapshot(t, &reg, "worker7");

  std::string perr;
  const std::unique_ptr<obs::JsonValue> doc = obs::JsonValue::parse(snap, &perr);
  ASSERT_NE(doc, nullptr) << perr;
  EXPECT_EQ(doc->find("proc")->as_string(), "worker7");
  ASSERT_NE(doc->find("clock_ns"), nullptr);
  ASSERT_NE(doc->find("abs_ns"), nullptr);
  // The anchor pair is sampled back-to-back: the absolute reading can
  // never precede the epoch by more than the tracer's own age.
  EXPECT_GE(doc->find("abs_ns")->as_number(),
            doc->find("clock_ns")->as_number());
  const obs::JsonValue* stats = doc->find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("counters")->find("net.send.count")->as_number(), 5);

  obs::StatsRegistry agg;
  std::string err;
  ASSERT_TRUE(obs::accumulate_snapshot_stats(snap, agg, &err)) << err;
  EXPECT_EQ(agg.counter("net.send.count"), 5u);
}

}  // namespace
}  // namespace eccheck
