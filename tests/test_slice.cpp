// ClusterSlice: node-window translation, shared timelines, and guard rails.
#include <gtest/gtest.h>

#include "cluster/slice.hpp"
#include "common/rng.hpp"

namespace eccheck::cluster {
namespace {

ClusterConfig cfg() {
  ClusterConfig c;
  c.num_nodes = 6;
  c.gpus_per_node = 2;
  c.nic_bandwidth = 100.0;
  return c;
}

TEST(Slice, TranslatesNodeIds) {
  VirtualCluster c(cfg());
  ClusterSlice s(c, 2, 3, /*owns_timeline=*/false);
  EXPECT_EQ(s.num_nodes(), 3);
  EXPECT_EQ(s.world_size(), 6);
  s.host(0).put("x", Buffer(8));
  EXPECT_TRUE(c.host(2).contains("x"));   // slice-local 0 == global 2
  EXPECT_FALSE(c.host(0).contains("x"));
}

TEST(Slice, FabricOpsTargetGlobalResources) {
  VirtualCluster c(cfg());
  ClusterSlice s(c, 3, 2, false);
  s.host(0).put("k", Buffer(100));
  auto t = s.net_send(0, 1, 100, {});  // global 3 -> 4
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(t), 1.0);
  EXPECT_EQ(s.nic_tx(0), c.nic_tx(3));
  EXPECT_EQ(s.nic_rx(1), c.nic_rx(4));
  // Global node 0's NIC untouched.
  EXPECT_DOUBLE_EQ(c.timeline().resource_available(c.nic_tx(0)), 0.0);
}

TEST(Slice, NonOwningResetIsNoop) {
  VirtualCluster c(cfg());
  c.net_send(0, 1, 100, {});
  ClusterSlice owned(c, /*owns_timeline=*/true);
  ClusterSlice window(c, 2, 2, /*owns_timeline=*/false);
  window.reset_timeline();
  EXPECT_GT(c.timeline().makespan(), 0.0);  // untouched
  owned.reset_timeline();
  EXPECT_DOUBLE_EQ(c.timeline().makespan(), 0.0);
}

TEST(Slice, SlicesShareOneTimeline) {
  VirtualCluster c(cfg());
  ClusterSlice a(c, 0, 3, false);
  ClusterSlice b(c, 3, 3, false);
  auto ta = a.net_send(0, 1, 100, {});
  auto tb = b.net_send(0, 1, 100, {});
  // Disjoint nodes: both run at t=0 in the shared schedule.
  EXPECT_DOUBLE_EQ(c.timeline().task(ta).start, 0.0);
  EXPECT_DOUBLE_EQ(c.timeline().task(tb).start, 0.0);
}

TEST(Slice, OutOfRangeRejected) {
  VirtualCluster c(cfg());
  EXPECT_THROW(ClusterSlice(c, 4, 3, false), CheckFailure);
  ClusterSlice s(c, 2, 2, false);
  EXPECT_THROW(s.host(2), CheckFailure);
  EXPECT_THROW(s.net_send(0, 2, 10, {}), CheckFailure);
}

TEST(Slice, RemoteStoreIsShared) {
  VirtualCluster c(cfg());
  ClusterSlice a(c, 0, 2, false);
  ClusterSlice b(c, 2, 2, false);
  a.remote().put("shared", Buffer(4));
  EXPECT_TRUE(b.remote().contains("shared"));
}

TEST(Slice, WorkerHelpers) {
  VirtualCluster c(cfg());
  ClusterSlice s(c, 2, 3, false);
  EXPECT_EQ(slice_node_of_worker(s, 0), 0);
  EXPECT_EQ(slice_node_of_worker(s, 3), 1);
  EXPECT_EQ(slice_gpu_of_worker(s, 3), 1);
}

}  // namespace
}  // namespace eccheck::cluster
