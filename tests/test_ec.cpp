// Erasure-coding tests: GF matrices, Cauchy construction, bitmatrix
// expansion, and full CrsCodec round trips over exhaustive failure subsets.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "common/rng.hpp"
#include "ec/bitmatrix.hpp"
#include "ec/cauchy.hpp"
#include "ec/crs_codec.hpp"
#include "ec/gf_matrix.hpp"

namespace eccheck::ec {
namespace {

using gf::Field;

GfMatrix random_matrix(int n, const Field& f, std::uint64_t seed) {
  SplitMix64 rng(seed);
  GfMatrix m(n, n, f);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      m.set(r, c, static_cast<std::uint32_t>(rng.next_below(f.order())));
  return m;
}

TEST(GfMatrix, IdentityMultiplication) {
  const auto& f = Field::get(8);
  GfMatrix a = random_matrix(5, f, 1);
  GfMatrix i = GfMatrix::identity(5, f);
  EXPECT_EQ(a.mul(i), a);
  EXPECT_EQ(i.mul(a), a);
}

TEST(GfMatrix, InverseRoundTrip) {
  const auto& f = Field::get(8);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    GfMatrix a = random_matrix(6, f, seed);
    if (!a.invertible()) continue;
    GfMatrix inv = a.inverse();
    EXPECT_EQ(a.mul(inv), GfMatrix::identity(6, f)) << "seed " << seed;
    EXPECT_EQ(inv.mul(a), GfMatrix::identity(6, f)) << "seed " << seed;
  }
}

TEST(GfMatrix, SingularDetected) {
  const auto& f = Field::get(8);
  GfMatrix a(3, 3, f);
  // Row 2 = row 0 ⊕ row 1 — singular over GF(2^8).
  std::uint32_t rows[2][3] = {{1, 2, 3}, {4, 5, 6}};
  for (int c = 0; c < 3; ++c) {
    a.set(0, c, rows[0][c]);
    a.set(1, c, rows[1][c]);
    a.set(2, c, rows[0][c] ^ rows[1][c]);
  }
  EXPECT_FALSE(a.invertible());
  EXPECT_THROW(a.inverse(), CheckFailure);
}

TEST(GfMatrix, SelectRows) {
  const auto& f = Field::get(8);
  GfMatrix a = random_matrix(4, f, 5);
  GfMatrix s = a.select_rows({3, 1});
  EXPECT_EQ(s.rows(), 2);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(s.at(0, c), a.at(3, c));
    EXPECT_EQ(s.at(1, c), a.at(1, c));
  }
}

TEST(GfMatrix, MulDimensionMismatchThrows) {
  const auto& f = Field::get(8);
  GfMatrix a(2, 3, f), b(2, 3, f);
  EXPECT_THROW(a.mul(b), CheckFailure);
}

// --- Cauchy ----------------------------------------------------------------

/// Enumerate all k-subsets of [0, n).
void for_each_subset(int n, int k, const std::function<void(std::vector<int>&)>& fn) {
  std::vector<int> idx(static_cast<std::size_t>(k));
  std::iota(idx.begin(), idx.end(), 0);
  for (;;) {
    fn(idx);
    int i = k - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j)
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
  }
}

TEST(Cauchy, EveryKRowSubsetOfGeneratorIsInvertible) {
  const auto& f = Field::get(8);
  for (auto [k, m] : std::vector<std::pair<int, int>>{
           {2, 2}, {3, 2}, {2, 3}, {4, 4}, {5, 3}}) {
    for (bool normalized : {false, true}) {
      GfMatrix e = systematic_generator(k, m, f, normalized);
      for_each_subset(k + m, k, [&](std::vector<int>& rows) {
        EXPECT_TRUE(e.select_rows(rows).invertible())
            << "k=" << k << " m=" << m << " normalized=" << normalized;
      });
    }
  }
}

TEST(Cauchy, NormalizedFirstColumnIsOnes) {
  const auto& f = Field::get(8);
  GfMatrix c = normalized_cauchy_matrix(4, 3, f);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(c.at(r, 0), 1u);
}

TEST(Cauchy, RejectsOversizedCode) {
  const auto& f = Field::get(4);  // order 16
  EXPECT_THROW(cauchy_matrix(10, 8, f), CheckFailure);
  EXPECT_NO_THROW(cauchy_matrix(10, 6, f));
}

TEST(Cauchy, NormalizationReducesBitmatrixOnes) {
  const auto& f = Field::get(8);
  BitMatrix plain = expand_to_bitmatrix(cauchy_matrix(6, 3, f));
  BitMatrix norm = expand_to_bitmatrix(normalized_cauchy_matrix(6, 3, f));
  EXPECT_LT(norm.ones(), plain.ones());
}

// --- BitMatrix --------------------------------------------------------------

TEST(BitMatrix, ExpansionIsRingHomomorphism) {
  // B(a)·(bits of x) == bits of (a·x): check by multiplying basis vectors.
  const auto& f = Field::get(8);
  SplitMix64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(256));
    GfMatrix one(1, 1, f);
    one.set(0, 0, a);
    BitMatrix bm = expand_to_bitmatrix(one);
    for (int j = 0; j < 8; ++j) {
      std::uint32_t prod = f.mul(a, 1u << j);
      for (int i = 0; i < 8; ++i)
        ASSERT_EQ(bm.get(i, j), ((prod >> i) & 1) != 0)
            << "a=" << a << " i=" << i << " j=" << j;
    }
  }
}

TEST(BitMatrix, ScheduleRunMatchesGfSemantics) {
  // Encode a stripe with the bitmatrix schedule, then decode it with the
  // inverse applied the same way; bit-exact round trip proves consistency.
  const auto& f = Field::get(8);
  const int k = 3, m = 2, w = 8;
  GfMatrix parity(m, k, f);
  parity.set(0, 0, 1);
  parity.set(0, 1, 3);
  parity.set(0, 2, 7);
  parity.set(1, 0, 9);
  parity.set(1, 1, 11);
  parity.set(1, 2, 200);
  BitMatrix bm = expand_to_bitmatrix(parity);
  auto sched = make_xor_schedule(bm, k, m, w);

  const std::size_t P = 512;
  std::vector<Buffer> data;
  for (int i = 0; i < k; ++i) {
    data.emplace_back(P, Buffer::Init::kUninitialized);
    fill_random(data.back().span(), 100 + static_cast<std::uint64_t>(i));
  }
  std::vector<Buffer> out;
  out.emplace_back(P);
  out.emplace_back(P);
  std::vector<ByteSpan> in_spans{data[0].span(), data[1].span(),
                                 data[2].span()};
  std::vector<MutableByteSpan> out_spans{out[0].span(), out[1].span()};
  run_xor_schedule(sched, w, in_spans, out_spans);

  // Linearity check instead of layout equality: schedule(x ⊕ y) ==
  // schedule(x) ⊕ schedule(y).
  std::vector<Buffer> data2;
  for (int i = 0; i < k; ++i) {
    data2.emplace_back(P, Buffer::Init::kUninitialized);
    fill_random(data2.back().span(), 200 + static_cast<std::uint64_t>(i));
  }
  std::vector<Buffer> out2;
  out2.emplace_back(P);
  out2.emplace_back(P);
  std::vector<ByteSpan> in2{data2[0].span(), data2[1].span(), data2[2].span()};
  std::vector<MutableByteSpan> o2{out2[0].span(), out2[1].span()};
  run_xor_schedule(sched, w, in2, o2);

  std::vector<Buffer> xored;
  for (int i = 0; i < k; ++i) {
    xored.push_back(data[static_cast<std::size_t>(i)].clone());
    xor_into(xored.back().span(), data2[static_cast<std::size_t>(i)].span());
  }
  std::vector<Buffer> out3;
  out3.emplace_back(P);
  out3.emplace_back(P);
  std::vector<ByteSpan> in3{xored[0].span(), xored[1].span(), xored[2].span()};
  std::vector<MutableByteSpan> o3{out3[0].span(), out3[1].span()};
  run_xor_schedule(sched, w, in3, o3);

  for (int r = 0; r < m; ++r) {
    Buffer expect = out[static_cast<std::size_t>(r)].clone();
    xor_into(expect.span(), out2[static_cast<std::size_t>(r)].span());
    EXPECT_EQ(out3[static_cast<std::size_t>(r)], expect) << "row " << r;
  }
}

TEST(BitMatrix, ScheduleRejectsBadPacketSize) {
  const auto& f = Field::get(8);
  GfMatrix one(1, 1, f);
  one.set(0, 0, 3);
  auto sched = make_xor_schedule(expand_to_bitmatrix(one), 1, 1, 8);
  Buffer in(60, Buffer::Init::kUninitialized);  // not divisible by 64
  Buffer out(60);
  std::vector<ByteSpan> is{in.span()};
  std::vector<MutableByteSpan> os{out.span()};
  EXPECT_THROW(run_xor_schedule(sched, 8, is, os), CheckFailure);
}

// --- CrsCodec ---------------------------------------------------------------

struct CodecParam {
  int k, m, w;
  KernelMode mode;
};

std::string param_name(const ::testing::TestParamInfo<CodecParam>& info) {
  return "k" + std::to_string(info.param.k) + "m" +
         std::to_string(info.param.m) + "w" + std::to_string(info.param.w) +
         (info.param.mode == KernelMode::kGfTable ? "_table" : "_xor");
}

class CrsCodecTest : public ::testing::TestWithParam<CodecParam> {
 protected:
  static constexpr std::size_t kPacket = 1024;

  std::vector<Buffer> make_data(int k, std::uint64_t seed) {
    std::vector<Buffer> d;
    for (int i = 0; i < k; ++i) {
      d.emplace_back(kPacket, Buffer::Init::kUninitialized);
      fill_random(d.back().span(), seed + static_cast<std::uint64_t>(i));
    }
    return d;
  }
};

TEST_P(CrsCodecTest, DecodeRecoversEveryFailurePattern) {
  const auto [k, m, w, mode] = GetParam();
  CrsCodec codec(k, m, w, mode);
  auto data = make_data(k, 42);

  std::vector<Buffer> parity;
  for (int r = 0; r < m; ++r) parity.emplace_back(kPacket);
  {
    std::vector<ByteSpan> in;
    for (auto& d : data) in.push_back(d.span());
    std::vector<MutableByteSpan> out;
    for (auto& p : parity) out.push_back(p.span());
    codec.encode(in, out);
  }

  // All chunks by generator row: rows [0,k) data, rows [k,k+m) parity.
  std::vector<const Buffer*> chunks;
  for (auto& d : data) chunks.push_back(&d);
  for (auto& p : parity) chunks.push_back(&p);

  // Exhaustive: every k-subset of surviving rows must reproduce the data.
  for_each_subset(k + m, k, [&](std::vector<int>& rows) {
    std::vector<ByteSpan> survive;
    for (int r : rows)
      survive.push_back(chunks[static_cast<std::size_t>(r)]->span());
    std::vector<Buffer> rec;
    for (int i = 0; i < k; ++i)
      rec.emplace_back(kPacket, Buffer::Init::kUninitialized);
    std::vector<MutableByteSpan> out;
    for (auto& r : rec) out.push_back(r.span());
    codec.decode(rows, survive, out);
    for (int i = 0; i < k; ++i)
      ASSERT_EQ(rec[static_cast<std::size_t>(i)],
                data[static_cast<std::size_t>(i)])
          << "rows subset failed";
  });
}

TEST_P(CrsCodecTest, PartialEncodingEqualsFullEncode) {
  const auto [k, m, w, mode] = GetParam();
  CrsCodec codec(k, m, w, mode);
  auto data = make_data(k, 77);

  std::vector<Buffer> parity_full;
  for (int r = 0; r < m; ++r) parity_full.emplace_back(kPacket);
  {
    std::vector<ByteSpan> in;
    for (auto& d : data) in.push_back(d.span());
    std::vector<MutableByteSpan> out;
    for (auto& p : parity_full) out.push_back(p.span());
    codec.encode(in, out);
  }

  // The distributed path: per-worker partial products XORed together.
  for (int r = 0; r < m; ++r) {
    Buffer acc(kPacket, Buffer::Init::kUninitialized);
    for (int c = 0; c < k; ++c) {
      codec.encode_partial(k + r, c, data[static_cast<std::size_t>(c)].span(),
                           acc.span(), c != 0);
    }
    EXPECT_EQ(acc, parity_full[static_cast<std::size_t>(r)]) << "row " << r;
  }
}

TEST_P(CrsCodecTest, ReconstructionMatrixRebuildsLostParity) {
  const auto [k, m, w, mode] = GetParam();
  if (m < 1) return;
  CrsCodec codec(k, m, w, mode);
  auto data = make_data(k, 99);

  std::vector<Buffer> parity;
  for (int r = 0; r < m; ++r) parity.emplace_back(kPacket);
  {
    std::vector<ByteSpan> in;
    for (auto& d : data) in.push_back(d.span());
    std::vector<MutableByteSpan> out;
    for (auto& p : parity) out.push_back(p.span());
    codec.encode(in, out);
  }

  // Survivors: all data rows. Targets: every parity row.
  std::vector<int> surv(static_cast<std::size_t>(k));
  std::iota(surv.begin(), surv.end(), 0);
  std::vector<int> targets;
  for (int r = 0; r < m; ++r) targets.push_back(k + r);
  GfMatrix t = codec.reconstruction_matrix(surv, targets);

  std::vector<ByteSpan> in;
  for (auto& d : data) in.push_back(d.span());
  std::vector<Buffer> rebuilt;
  for (int r = 0; r < m; ++r)
    rebuilt.emplace_back(kPacket, Buffer::Init::kUninitialized);
  std::vector<MutableByteSpan> out;
  for (auto& b : rebuilt) out.push_back(b.span());
  codec.apply_matrix(t, in, out);

  for (int r = 0; r < m; ++r)
    EXPECT_EQ(rebuilt[static_cast<std::size_t>(r)],
              parity[static_cast<std::size_t>(r)]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrsCodecTest,
    ::testing::Values(CodecParam{2, 2, 8, KernelMode::kGfTable},
                      CodecParam{2, 2, 8, KernelMode::kXorBitmatrix},
                      CodecParam{3, 2, 8, KernelMode::kGfTable},
                      CodecParam{2, 3, 8, KernelMode::kGfTable},
                      CodecParam{4, 4, 8, KernelMode::kGfTable},
                      CodecParam{4, 4, 8, KernelMode::kXorBitmatrix},
                      CodecParam{5, 3, 4, KernelMode::kGfTable},
                      CodecParam{2, 2, 16, KernelMode::kGfTable},
                      CodecParam{3, 3, 16, KernelMode::kGfTable},
                      CodecParam{6, 2, 8, KernelMode::kXorBitmatrix}),
    param_name);

TEST(CrsCodec, DecodeRejectsWrongRowCount) {
  CrsCodec codec(3, 2, 8);
  Buffer b(64, Buffer::Init::kUninitialized);
  std::vector<ByteSpan> chunks{b.span(), b.span()};
  std::vector<Buffer> rec(3);
  for (auto& r : rec) r = Buffer(64);
  std::vector<MutableByteSpan> out;
  for (auto& r : rec) out.push_back(r.span());
  EXPECT_THROW(codec.decode({0, 1}, chunks, out), CheckFailure);
}

TEST(CrsCodec, DecodeRejectsDuplicateRows) {
  CrsCodec codec(2, 2, 8);
  Buffer b(64, Buffer::Init::kUninitialized);
  std::vector<ByteSpan> chunks{b.span(), b.span()};
  std::vector<Buffer> rec(2);
  for (auto& r : rec) r = Buffer(64);
  std::vector<MutableByteSpan> out;
  for (auto& r : rec) out.push_back(r.span());
  EXPECT_THROW(codec.decode({1, 1}, chunks, out), CheckFailure);
}

TEST(CrsCodec, XorOpsReportedOnlyInBitmatrixMode) {
  CrsCodec table(2, 2, 8, KernelMode::kGfTable);
  CrsCodec xorm(2, 2, 8, KernelMode::kXorBitmatrix);
  EXPECT_EQ(table.xor_ops_per_stripe(), -1);
  EXPECT_GT(xorm.xor_ops_per_stripe(), 0);
}

TEST(CrsCodec, StripingOnlyWhenMZero) {
  CrsCodec codec(3, 0, 8);
  std::vector<ByteSpan> in;
  std::vector<MutableByteSpan> out;
  Buffer a(64, Buffer::Init::kUninitialized), b(64, Buffer::Init::kUninitialized),
      c(64, Buffer::Init::kUninitialized);
  in = {a.span(), b.span(), c.span()};
  EXPECT_NO_THROW(codec.encode(in, out));
}

}  // namespace
}  // namespace eccheck::ec
