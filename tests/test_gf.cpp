// GF(2^w) field-law and region-kernel tests, parameterized over w.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gf/galois.hpp"

namespace eccheck::gf {
namespace {

class FieldTest : public ::testing::TestWithParam<int> {
 protected:
  const Field& f() const { return Field::get(GetParam()); }

  /// Sampled elements: all of GF(16)/GF(256), a spread for GF(65536).
  std::vector<std::uint32_t> sample_elements() const {
    std::vector<std::uint32_t> out;
    if (f().order() <= 256) {
      for (std::uint32_t a = 0; a < f().order(); ++a) out.push_back(a);
    } else {
      SplitMix64 rng(99);
      out.push_back(0);
      out.push_back(1);
      out.push_back(f().max_element());
      for (int i = 0; i < 200; ++i)
        out.push_back(static_cast<std::uint32_t>(rng.next_below(f().order())));
    }
    return out;
  }
};

TEST_P(FieldTest, TablesMatchSlowMultiply) {
  SplitMix64 rng(1);
  for (int i = 0; i < 5000; ++i) {
    std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(f().order()));
    std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(f().order()));
    EXPECT_EQ(f().mul(a, b), f().mul_slow(a, b)) << a << "*" << b;
  }
}

TEST_P(FieldTest, MultiplicationCommutesAndHasIdentity) {
  for (std::uint32_t a : sample_elements()) {
    EXPECT_EQ(f().mul(a, 1), a);
    EXPECT_EQ(f().mul(1, a), a);
    EXPECT_EQ(f().mul(a, 0), 0u);
    for (std::uint32_t b : {std::uint32_t{3}, f().max_element()})
      EXPECT_EQ(f().mul(a, b), f().mul(b, a));
  }
}

TEST_P(FieldTest, Associativity) {
  SplitMix64 rng(2);
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(f().order()));
    std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(f().order()));
    std::uint32_t c = static_cast<std::uint32_t>(rng.next_below(f().order()));
    EXPECT_EQ(f().mul(f().mul(a, b), c), f().mul(a, f().mul(b, c)));
  }
}

TEST_P(FieldTest, Distributivity) {
  SplitMix64 rng(3);
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(f().order()));
    std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(f().order()));
    std::uint32_t c = static_cast<std::uint32_t>(rng.next_below(f().order()));
    EXPECT_EQ(f().mul(a, f().add(b, c)),
              f().add(f().mul(a, b), f().mul(a, c)));
  }
}

TEST_P(FieldTest, InverseRoundTrip) {
  for (std::uint32_t a : sample_elements()) {
    if (a == 0) continue;
    EXPECT_EQ(f().mul(a, f().inv(a)), 1u) << "a=" << a;
    EXPECT_EQ(f().div(f().mul(a, 7 % f().order() ? 7 : 3), a),
              7 % f().order() ? 7u : 3u);
  }
}

TEST_P(FieldTest, InverseOfZeroThrows) {
  EXPECT_THROW(f().inv(0), CheckFailure);
  EXPECT_THROW(f().div(1, 0), CheckFailure);
}

TEST_P(FieldTest, PowMatchesRepeatedMultiplication) {
  for (std::uint32_t a : {std::uint32_t{2}, std::uint32_t{5}}) {
    std::uint32_t acc = 1;
    for (std::uint64_t e = 0; e < 40; ++e) {
      EXPECT_EQ(f().pow(a, e), acc) << "a=" << a << " e=" << e;
      acc = f().mul(acc, a);
    }
  }
  EXPECT_EQ(f().pow(0, 0), 1u);
  EXPECT_EQ(f().pow(0, 5), 0u);
}

TEST_P(FieldTest, PrimitiveElementHasFullOrder) {
  // alpha = 2 generates the multiplicative group.
  std::uint32_t x = 1;
  std::uint32_t steps = 0;
  do {
    x = f().mul(x, 2);
    ++steps;
  } while (x != 1 && steps <= f().order());
  EXPECT_EQ(steps, f().order() - 1);
}

TEST_P(FieldTest, MulRegionMatchesScalar) {
  const std::size_t n = 1024;
  Buffer src(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 5);
  SplitMix64 rng(6);
  for (int trial = 0; trial < 16; ++trial) {
    std::uint32_t c = static_cast<std::uint32_t>(rng.next_below(f().order()));
    Buffer dst(n, Buffer::Init::kUninitialized);
    f().mul_region(c, src.span(), dst.span(), /*accumulate=*/false);

    // Scalar reference on packed symbols.
    const int w = f().w();
    const auto* s = reinterpret_cast<const unsigned char*>(src.data());
    const auto* d = reinterpret_cast<const unsigned char*>(dst.data());
    if (w == 8) {
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(d[i], f().mul(c, s[i])) << i;
    } else if (w == 4) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(d[i] & 0xf, f().mul(c, s[i] & 0xf));
        ASSERT_EQ(d[i] >> 4, f().mul(c, s[i] >> 4));
      }
    } else {
      for (std::size_t i = 0; i < n; i += 2) {
        std::uint32_t sv = s[i] | (s[i + 1] << 8);
        std::uint32_t dv = d[i] | (d[i + 1] << 8);
        ASSERT_EQ(dv, f().mul(c, sv));
      }
    }
  }
}

TEST_P(FieldTest, MulRegionAccumulate) {
  const std::size_t n = 512;
  Buffer src(n, Buffer::Init::kUninitialized);
  Buffer dst(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 7);
  fill_random(dst.span(), 8);

  Buffer expect(n, Buffer::Init::kUninitialized);
  f().mul_region(13 % f().order(), src.span(), expect.span(), false);
  xor_into(expect.span(), dst.span());

  f().mul_region(13 % f().order(), src.span(), dst.span(), true);
  EXPECT_EQ(dst, expect);
}

TEST_P(FieldTest, MulRegionSpecialConstants) {
  const std::size_t n = 256;
  Buffer src(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 9);

  Buffer zero(n, Buffer::Init::kUninitialized);
  fill_random(zero.span(), 10);
  f().mul_region(0, src.span(), zero.span(), false);
  EXPECT_EQ(zero, Buffer(n));  // all zeros

  Buffer one(n, Buffer::Init::kUninitialized);
  f().mul_region(1, src.span(), one.span(), false);
  EXPECT_EQ(one, src);
}

TEST_P(FieldTest, MulRegionLinearity) {
  // c·(x ⊕ y) == c·x ⊕ c·y — the property the whole XOR-reduction
  // protocol rests on.
  const std::size_t n = 256;
  Buffer x(n, Buffer::Init::kUninitialized), y(n, Buffer::Init::kUninitialized);
  fill_random(x.span(), 11);
  fill_random(y.span(), 12);
  std::uint32_t c = f().max_element();

  Buffer xy = x.clone();
  xor_into(xy.span(), y.span());
  Buffer lhs(n);
  f().mul_region(c, xy.span(), lhs.span(), false);

  Buffer rhs(n), cy(n);
  f().mul_region(c, x.span(), rhs.span(), false);
  f().mul_region(c, y.span(), cy.span(), false);
  xor_into(rhs.span(), cy.span());
  EXPECT_EQ(lhs, rhs);
}

TEST_P(FieldTest, RegionGranularityEnforced) {
  if (f().w() != 16) return;
  Buffer src(15, Buffer::Init::kUninitialized);
  Buffer dst(15, Buffer::Init::kUninitialized);
  EXPECT_THROW(f().mul_region(3, src.span(), dst.span(), false),
               CheckFailure);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, FieldTest, ::testing::Values(4, 8, 16),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Field, UnsupportedWidthThrows) {
  EXPECT_THROW(Field::get(7), CheckFailure);
}

}  // namespace
}  // namespace eccheck::gf
