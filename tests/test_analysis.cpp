// Fault-tolerance analysis tests: Eqns. 1–2, Figs. 3/15 math, group sizing.
#include <gtest/gtest.h>

#include "analysis/recovery_rate.hpp"

namespace eccheck::analysis {
namespace {

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(binomial(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(4, 4), 1.0);
  EXPECT_DOUBLE_EQ(binomial(4, 5), 0.0);
  EXPECT_DOUBLE_EQ(binomial(2000, 1), 2000.0);
}

TEST(Eqn1, MatchesClosedForm) {
  // Eqn. 1 simplifies to (1 - p²)² — two groups of 2, each surviving
  // unless both members fail.
  for (double p : {0.0, 0.01, 0.05, 0.1, 0.5, 1.0}) {
    EXPECT_NEAR(eqn1_replication_rate(p), (1 - p * p) * (1 - p * p), 1e-12)
        << "p=" << p;
  }
}

TEST(Eqn2, BinomialTail) {
  for (double p : {0.0, 0.02, 0.1, 0.5}) {
    double q = 1 - p;
    double expect = q * q * q * q + 4 * p * q * q * q + 6 * p * p * q * q;
    EXPECT_NEAR(eqn2_erasure_rate(p), expect, 1e-12);
  }
}

TEST(Eqn1Vs2, GapIsTwoPSquaredQSquared) {
  // Paper: R_era − R_rep = 2p²(1−p)².
  for (double p : {0.01, 0.05, 0.1, 0.3}) {
    double gap = eqn2_erasure_rate(p) - eqn1_replication_rate(p);
    EXPECT_NEAR(gap, 2 * p * p * (1 - p) * (1 - p), 1e-12) << "p=" << p;
  }
}

TEST(ErasureGroupRate, BoundaryCases) {
  EXPECT_DOUBLE_EQ(erasure_group_rate(4, 2, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(erasure_group_rate(4, 4, 1.0), 1.0);  // tolerate all
  EXPECT_DOUBLE_EQ(erasure_group_rate(4, 0, 1.0), 0.0);
  EXPECT_NEAR(erasure_group_rate(1, 0, 0.3), 0.7, 1e-12);
}

TEST(ErasureGroupRate, MonotoneInParityAndFailureRate) {
  for (int m = 0; m < 4; ++m)
    EXPECT_LT(erasure_group_rate(8, m, 0.05), erasure_group_rate(8, m + 1, 0.05));
  EXPECT_GT(erasure_group_rate(8, 2, 0.01), erasure_group_rate(8, 2, 0.05));
}

TEST(ClusterRate, Fig3ShapeErasureBeatsReplication) {
  // 2000 nodes in 500 sections of 4: EC strictly better for p in (0,1),
  // diverging as p grows (Fig. 3).
  for (double p : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    double rep = cluster_rate(eqn1_replication_rate(p), 500);
    double era = cluster_rate(eqn2_erasure_rate(p), 500);
    EXPECT_GT(era, rep) << "p=" << p;
  }
  // The gap widens with p in the operating regime (before both curves
  // collapse towards zero).
  double prev_gap = 0;
  for (double p : {0.001, 0.002, 0.004, 0.008}) {
    double gap = cluster_rate(eqn2_erasure_rate(p), 500) -
                 cluster_rate(eqn1_replication_rate(p), 500);
    EXPECT_GE(gap, prev_gap) << "p=" << p;
    prev_gap = gap;
  }
}

TEST(Fig15, EccheckDominatesAndAdvantageGrowsWithN) {
  double prev_gap = 0;
  for (int n : {4, 8, 16, 32}) {
    auto c = compare_at_equal_redundancy(n, 0.05);
    EXPECT_GT(c.eccheck_rate, c.replication_rate) << "n=" << n;
    double gap = c.eccheck_rate - c.replication_rate;
    EXPECT_GT(gap, prev_gap) << "n=" << n;
    prev_gap = gap;
  }
}

TEST(Fig15, EqualAtPZeroAndPOne) {
  auto z = compare_at_equal_redundancy(8, 0.0);
  EXPECT_DOUBLE_EQ(z.eccheck_rate, 1.0);
  EXPECT_DOUBLE_EQ(z.replication_rate, 1.0);
  auto o = compare_at_equal_redundancy(8, 1.0);
  EXPECT_DOUBLE_EQ(o.replication_rate, 0.0);
}

TEST(GroupTradeoff, TableFiltersInvalidSizes) {
  auto t = group_tradeoff_table(2000, 0.01, {2, 3, 4, 7, 8, 10, 2000});
  // 3 and 7 rejected (odd), everything else divides 2000.
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].group_size, 2);
  EXPECT_EQ(t[0].num_groups, 1000);
  EXPECT_DOUBLE_EQ(t[0].per_device_comm_factor, 1.0);
}

TEST(GroupTradeoff, BiggerGroupsMoreReliableMoreExpensive) {
  auto t = group_tradeoff_table(2000, 0.02, {2, 4, 8, 20});
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    EXPECT_LT(t[i].cluster_recovery_rate, t[i + 1].cluster_recovery_rate);
    EXPECT_LT(t[i].per_device_comm_factor, t[i + 1].per_device_comm_factor);
  }
}

TEST(GroupTradeoff, OptimalGroupSizePicksCheapestSufficient) {
  // §VI future work: the smallest group meeting the reliability target.
  int g = optimal_group_size(2000, 0.02, 0.99, {2, 4, 8, 20, 40});
  EXPECT_GT(g, 2);  // groups of 2 are not reliable enough at p=0.02
  // The chosen size meets the target...
  auto t = group_tradeoff_table(2000, 0.02, {g});
  EXPECT_GE(t[0].cluster_recovery_rate, 0.99);
  // ...and impossible targets return 0.
  EXPECT_EQ(optimal_group_size(2000, 0.5, 0.999999, {2, 4}), 0);
}

}  // namespace
}  // namespace eccheck::analysis
