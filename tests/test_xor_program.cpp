// XOR-program optimization: the CSE'd program must be bit-exact with the
// naive schedule and strictly cheaper on real Cauchy matrices.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ec/cauchy.hpp"
#include "ec/xor_program.hpp"

namespace eccheck::ec {
namespace {

using gf::Field;

BitMatrix parity_bitmatrix(int k, int m, int w, bool normalized = true) {
  const auto& f = Field::get(w);
  return expand_to_bitmatrix(normalized ? normalized_cauchy_matrix(k, m, f)
                                        : cauchy_matrix(k, m, f));
}

std::vector<Buffer> rand_packets(int n, std::size_t size,
                                 std::uint64_t seed) {
  std::vector<Buffer> v;
  for (int i = 0; i < n; ++i) {
    v.emplace_back(size, Buffer::Init::kUninitialized);
    fill_random(v.back().span(), seed + static_cast<std::uint64_t>(i));
  }
  return v;
}

struct Shape {
  int k, m, w;
};

class XorProgramTest : public ::testing::TestWithParam<Shape> {};

TEST_P(XorProgramTest, OptimizedMatchesNaive) {
  const auto [k, m, w] = GetParam();
  BitMatrix bm = parity_bitmatrix(k, m, w);
  XorProgram naive = naive_xor_program(bm, k, m, w);
  XorProgram opt = optimize_xor_program(bm, k, m, w);

  const std::size_t P = static_cast<std::size_t>(w) * 8 * 16;
  auto data = rand_packets(k, P, 42);
  std::vector<ByteSpan> in;
  for (auto& d : data) in.push_back(d.span());

  auto out_naive = rand_packets(m, P, 100);
  auto out_opt = rand_packets(m, P, 200);
  std::vector<MutableByteSpan> on, oo;
  for (auto& b : out_naive) on.push_back(b.span());
  for (auto& b : out_opt) oo.push_back(b.span());

  run_xor_program(naive, in, on);
  run_xor_program(opt, in, oo);
  for (int r = 0; r < m; ++r)
    ASSERT_EQ(out_naive[static_cast<std::size_t>(r)],
              out_opt[static_cast<std::size_t>(r)])
        << "row " << r;
}

TEST_P(XorProgramTest, OptimizationNeverCostsMore) {
  const auto [k, m, w] = GetParam();
  BitMatrix bm = parity_bitmatrix(k, m, w);
  XorProgram naive = naive_xor_program(bm, k, m, w);
  XorProgram opt = optimize_xor_program(bm, k, m, w);
  EXPECT_LE(opt.xor_count(), naive.xor_count());
}

INSTANTIATE_TEST_SUITE_P(Shapes, XorProgramTest,
                         ::testing::Values(Shape{2, 2, 8}, Shape{4, 2, 8},
                                           Shape{6, 3, 8}, Shape{3, 3, 4},
                                           Shape{4, 4, 8}),
                         [](const auto& info) {
                           const auto& s = info.param;
                           return "k" + std::to_string(s.k) + "m" +
                                  std::to_string(s.m) + "w" +
                                  std::to_string(s.w);
                         });

TEST(XorProgram, RealCauchyMatricesActuallyShrink) {
  // Dense parity matrices have many shared pairs — expect real savings.
  BitMatrix bm = parity_bitmatrix(6, 3, 8, /*normalized=*/false);
  XorProgram naive = naive_xor_program(bm, 6, 3, 8);
  XorProgram opt = optimize_xor_program(bm, 6, 3, 8);
  EXPECT_LT(opt.xor_count(), naive.xor_count() * 0.8)
      << "naive=" << naive.xor_count() << " opt=" << opt.xor_count();
}

TEST(XorProgram, NaiveCountEqualsScheduleOnes) {
  BitMatrix bm = parity_bitmatrix(4, 2, 8);
  XorProgram naive = naive_xor_program(bm, 4, 2, 8);
  // ones(B) ops total; first op per row is a copy, so XORs = ones - rows.
  EXPECT_EQ(naive.xor_count(), bm.ones() - bm.rows());
}

TEST(XorProgram, NaiveEqualsRunXorSchedule) {
  const int k = 3, m = 2, w = 8;
  BitMatrix bm = parity_bitmatrix(k, m, w);
  const std::size_t P = 512;

  auto data = rand_packets(k, P, 7);
  std::vector<ByteSpan> in;
  for (auto& d : data) in.push_back(d.span());

  auto a = rand_packets(m, P, 300);
  auto b = rand_packets(m, P, 400);
  std::vector<MutableByteSpan> oa, ob;
  for (auto& x : a) oa.push_back(x.span());
  for (auto& x : b) ob.push_back(x.span());

  run_xor_schedule(make_xor_schedule(bm, k, m, w), w, in, oa);
  run_xor_program(naive_xor_program(bm, k, m, w), in, ob);
  for (int r = 0; r < m; ++r)
    EXPECT_EQ(a[static_cast<std::size_t>(r)], b[static_cast<std::size_t>(r)]);
}

TEST(XorProgram, RejectsBadPacketSizes) {
  BitMatrix bm = parity_bitmatrix(2, 1, 8);
  XorProgram prog = naive_xor_program(bm, 2, 1, 8);
  Buffer in1(60, Buffer::Init::kUninitialized);
  Buffer in2(60, Buffer::Init::kUninitialized);
  Buffer out(60);
  std::vector<ByteSpan> in{in1.span(), in2.span()};
  std::vector<MutableByteSpan> o{out.span()};
  EXPECT_THROW(run_xor_program(prog, in, o), CheckFailure);
}

}  // namespace
}  // namespace eccheck::ec
