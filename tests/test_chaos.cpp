// Chaos subsystem: deterministic schedules, exact mid-operation fault
// firing, failure-during-save fallback, the negative (tamper) control, and
// the headline randomized campaigns with zero invariant violations.
#include <gtest/gtest.h>

#include <sstream>

#include "chaos/runner.hpp"
#include "core/session.hpp"
#include "dnn/checkpoint_gen.hpp"

namespace eccheck {
namespace {

using chaos::ChaosConfig;
using chaos::ChaosEvent;
using chaos::ChaosRunner;
using chaos::EventKind;
using chaos::FaultPlan;

ChaosConfig small_config(std::uint64_t seed, int events = 48) {
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.events = events;
  cfg.packet_size = kib(8);
  return cfg;
}

// ---- schedule generator ---------------------------------------------------

TEST(ChaosSchedule, DeterministicFromSeed) {
  auto a = chaos::generate_schedule(small_config(123));
  auto b = chaos::generate_schedule(small_config(123));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].picks, b[i].picks) << i;
    EXPECT_DOUBLE_EQ(a[i].op_frac, b[i].op_frac) << i;
    EXPECT_DOUBLE_EQ(a[i].detect_heartbeat, b[i].detect_heartbeat) << i;
    EXPECT_DOUBLE_EQ(a[i].detect_timeout, b[i].detect_timeout) << i;
    EXPECT_EQ(a[i].detect_quorum, b[i].detect_quorum) << i;
    EXPECT_DOUBLE_EQ(a[i].replace_delay, b[i].replace_delay) << i;
  }
  // A different seed diverges somewhere.
  auto c = chaos::generate_schedule(small_config(124));
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i)
    if (a[i].kind != c[i].kind || a[i].op_frac != c[i].op_frac)
      differs = true;
  EXPECT_TRUE(differs);
}

TEST(ChaosSchedule, ShapeAndParameterRanges) {
  ChaosConfig cfg = small_config(7, 200);
  auto sched = chaos::generate_schedule(cfg);
  ASSERT_EQ(sched.size(), 200u);
  EXPECT_EQ(sched.front().kind, EventKind::kSave);
  EXPECT_EQ(sched.back().kind, EventKind::kRecover);
  for (const auto& e : sched) {
    EXPECT_GT(e.detect_heartbeat, 0.0);
    EXPECT_GE(e.detect_timeout, e.detect_heartbeat);
    EXPECT_GE(e.detect_quorum, 1);
    EXPECT_LE(e.detect_quorum, cfg.num_nodes - 1);
    EXPECT_GE(e.op_frac, 0.0);
    EXPECT_LT(e.op_frac, 1.0);
    EXPECT_GE(e.replace_delay, 0.0);
    switch (e.kind) {
      case EventKind::kMidSaveKill: EXPECT_EQ(e.picks.size(), 1u); break;
      case EventKind::kMidLoadKill: EXPECT_EQ(e.picks.size(), 2u); break;
      case EventKind::kCorrupt: EXPECT_EQ(e.picks.size(), 3u); break;
      case EventKind::kKill:
        EXPECT_GE(e.picks.size(), 1u);
        // burst cap: min(m+1, nodes-1)
        EXPECT_LE(e.picks.size(),
                  static_cast<std::size_t>(
                      std::min(cfg.m + 1, cfg.num_nodes - 1)));
        break;
      default: EXPECT_TRUE(e.picks.empty()); break;
    }
  }
  // The mix actually contains the interesting kinds at this length.
  auto count = [&](EventKind k) {
    std::size_t n = 0;
    for (const auto& e : sched) n += e.kind == k ? 1 : 0;
    return n;
  };
  EXPECT_GT(count(EventKind::kSave), 0u);
  EXPECT_GT(count(EventKind::kKill), 0u);
  EXPECT_GT(count(EventKind::kMidSaveKill), 0u);
  EXPECT_GT(count(EventKind::kMidLoadKill), 0u);
  EXPECT_GT(count(EventKind::kCorrupt), 0u);
}

// ---- FaultPlan ------------------------------------------------------------

TEST(FaultPlan, FiresAtExactOperationIndex) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.gpus_per_node = 1;
  cluster::VirtualCluster vc(cc);
  FaultPlan plan;
  vc.set_fault_hook(&plan);

  plan.arm({{plan.op_count() + 2, 0}});  // fire at the start of the 3rd op
  vc.host_copy(1, 64, {});
  EXPECT_TRUE(vc.alive(0));
  vc.host_copy(1, 64, {});
  EXPECT_TRUE(vc.alive(0));
  vc.host_copy(1, 64, {});  // index +2: trigger fires before bytes move
  EXPECT_FALSE(vc.alive(0));
  ASSERT_EQ(plan.fired().size(), 1u);
  EXPECT_EQ(plan.fired()[0].node, 0);
  EXPECT_EQ(plan.fired()[0].during, cluster::FabricOp::Kind::kHostCopy);
  vc.set_fault_hook(nullptr);
}

TEST(FaultPlan, TriggerOnDeadNodeIsConsumedWithoutFiring) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.gpus_per_node = 1;
  cluster::VirtualCluster vc(cc);
  FaultPlan plan;
  vc.set_fault_hook(&plan);
  vc.kill(0);
  plan.arm({{plan.op_count(), 0}});
  vc.host_copy(1, 64, {});
  EXPECT_TRUE(plan.fired().empty());
  EXPECT_FALSE(plan.armed());
  vc.set_fault_hook(nullptr);
}

// ---- failure during save (satellite): previous version must survive ------

struct SaveFixture {
  cluster::VirtualCluster cluster;
  dnn::ModelSpec model;
  dnn::ParallelismSpec par;
  FaultPlan plan;

  SaveFixture()
      : cluster([] {
          cluster::ClusterConfig cfg;
          cfg.num_nodes = 4;
          cfg.gpus_per_node = 2;
          return cfg;
        }()),
        model(dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1, 4, "chaos-t")),
        par{2, 4, 1} {
    model.vocab = 256;
    cluster.set_fault_hook(&plan);
  }
  ~SaveFixture() { cluster.set_fault_hook(nullptr); }

  std::vector<dnn::StateDict> shards(std::int64_t iteration) {
    dnn::CheckpointGenConfig gen;
    gen.model = model;
    gen.parallelism = par;
    gen.seed = 99;
    gen.iteration = iteration;
    return dnn::make_sharded_checkpoint(gen);
  }

  core::SessionConfig session_config() {
    core::SessionConfig cfg;
    cfg.ec.k = 2;
    cfg.ec.m = 2;
    cfg.ec.packet_size = kib(8);
    return cfg;
  }
};

TEST(ChaosMidSave, KillBetweenPipelineStagesFallsBackToPreviousVersion) {
  // Probe a clean save's fabric-op count once, then tear a save at several
  // points of that window. Whatever happens to version 2 — torn (never
  // committed) or completed before the kill landed — load must return a
  // bit-exact checkpoint: v1 if v2 never committed, v2 if it did.
  std::uint64_t clean_save_ops = 0;
  {
    SaveFixture probe;
    auto s = core::Session::initialize(probe.cluster, probe.model, probe.par,
                                       probe.session_config());
    const std::uint64_t before = probe.plan.op_count();
    s.save(probe.shards(1));
    clean_save_ops = probe.plan.op_count() - before;
    ASSERT_GT(clean_save_ops, 4u);
  }

  for (double frac : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    SaveFixture f;
    auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                       f.session_config());
    auto v1 = f.shards(1);
    s.save(v1);
    auto v2 = f.shards(2);
    std::vector<std::uint64_t> v2_digests;
    for (const auto& sd : v2) v2_digests.push_back(sd.digest());

    const std::uint64_t offset =
        1 + static_cast<std::uint64_t>(frac *
                                       static_cast<double>(clean_save_ops - 2));
    f.plan.arm({{f.plan.op_count() + offset, 2}});
    bool torn = false;
    try {
      s.save(v2);
    } catch (const CheckFailure&) {
      torn = true;
    }
    f.plan.disarm();

    if (!f.cluster.alive(2)) f.cluster.replace(2);
    std::vector<dnn::StateDict> out;
    auto r = s.load(out);
    ASSERT_TRUE(r.report.success) << "frac=" << frac << ": " << r.report.detail;
    ASSERT_TRUE(r.version == 1 || r.version == 2) << "frac=" << frac;
    const auto& want = r.version == 2 ? v2_digests : [&] {
      std::vector<std::uint64_t> d;
      for (const auto& sd : v1) d.push_back(sd.digest());
      return d;
    }();
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i].digest(), want[i]) << "frac=" << frac << " worker " << i;
    // A torn save must never present itself as loadable newest.
    if (torn && r.version == 2) {
      // Acceptable only if the kill landed after all local commits (step-4
      // remote-flush window) — in which case v2 is genuinely complete, which
      // the digest equality above already proved.
      SUCCEED();
    }
  }
}

TEST(ChaosMidSave, TornFirstSaveLeavesNothingLoadable) {
  SaveFixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  f.plan.arm({{f.plan.op_count() + 3, 1}});
  EXPECT_THROW(s.save(f.shards(1)), CheckFailure);
  f.plan.disarm();
  if (!f.cluster.alive(1)) f.cluster.replace(1);
  std::vector<dnn::StateDict> out;
  auto r = s.load(out);
  EXPECT_FALSE(r.report.success);
  EXPECT_EQ(r.version, 0);
}

// ---- runner oracle: negative control --------------------------------------

TEST(ChaosRunnerOracle, SilentCorruptionIsFlaggedWhenScrubbingIsOff) {
  // With CRC scrubbing disabled, a flipped byte in a *data* chunk reaches
  // the recovered state_dict — the runner's bit-exact invariant must flag
  // it. This proves the oracle detects real corruption rather than trivially
  // passing.
  ChaosConfig cfg = small_config(5);
  cfg.verify_integrity = false;
  ChaosRunner runner(cfg);
  ASSERT_GT(runner.force_save(), 0);

  const auto& placement = runner.session().placement();
  ASSERT_FALSE(placement.data_nodes.empty());
  const int victim = placement.data_nodes[0];
  auto rows = runner.cluster().host(victim).keys_with_prefix("ec/1/row/");
  ASSERT_FALSE(rows.empty());
  Buffer chunk = runner.cluster().host(victim).take(rows[0]);
  ASSERT_GT(chunk.size(), 0u);
  chunk.data()[0] ^= std::byte{0xff};
  runner.cluster().host(victim).put(rows[0], std::move(chunk));

  runner.force_recovery();
  EXPECT_GT(runner.summary().violations, 0u);
  ASSERT_FALSE(runner.summary().violation_messages.empty());
  EXPECT_NE(runner.summary().violation_messages[0].find("bitexact"),
            std::string::npos);
  EXPECT_NE(runner.summary().violation_messages[0].find("seed="),
            std::string::npos);
}

TEST(ChaosRunnerOracle, ScrubbingDecodesAroundTheSameCorruption) {
  // Positive twin of the test above: with verify_integrity on (default),
  // the same tampering is detected by the CRC scrub, decoded around, and
  // recovery stays bit-exact — zero violations.
  ChaosConfig cfg = small_config(5);
  ChaosRunner runner(cfg);
  ASSERT_GT(runner.force_save(), 0);

  const auto& placement = runner.session().placement();
  const int victim = placement.data_nodes[0];
  auto rows = runner.cluster().host(victim).keys_with_prefix("ec/1/row/");
  ASSERT_FALSE(rows.empty());
  Buffer chunk = runner.cluster().host(victim).take(rows[0]);
  chunk.data()[0] ^= std::byte{0xff};
  runner.cluster().host(victim).put(rows[0], std::move(chunk));

  runner.force_recovery();
  EXPECT_EQ(runner.summary().violations, 0u)
      << (runner.summary().violation_messages.empty()
              ? ""
              : runner.summary().violation_messages[0]);
}

// ---- the headline campaigns ----------------------------------------------

struct CampaignTotals {
  std::size_t events = 0, saves = 0, torn_saves = 0, kills = 0,
              mid_op_kills = 0, corruptions = 0, recoveries = 0,
              detect_count = 0;
  void add(const chaos::CampaignSummary& s) {
    events += s.events;
    saves += s.saves;
    torn_saves += s.torn_saves;
    kills += s.kills;
    mid_op_kills += s.mid_op_kills;
    corruptions += s.corruptions;
    recoveries += s.recoveries;
    detect_count += static_cast<std::size_t>(s.detect_latency.count);
  }
};

TEST(ChaosCampaign, FiveHundredPlusEventsZeroViolations) {
  // ≥ 500 events across multiple seeds, with correlated bursts, mid-save and
  // mid-load kills, silent corruption and detector sweeps. Zero invariant
  // violations, and the aggregate mix must actually have exercised the
  // interesting paths (otherwise the campaign proves nothing).
  CampaignTotals totals;
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull, 66ull}) {
    ChaosConfig cfg = small_config(seed, 90);
    cfg.flush_to_remote = seed % 2 == 0;  // alternate remote-rescue coverage
    ChaosRunner runner(cfg);
    const auto& s = runner.run();
    EXPECT_EQ(s.violations, 0u)
        << "seed " << seed << ": "
        << (s.violation_messages.empty() ? "?" : s.violation_messages[0]);
    totals.add(s);
  }
  EXPECT_GE(totals.events, 500u);
  EXPECT_GT(totals.saves, 0u);
  EXPECT_GT(totals.torn_saves, 0u);
  EXPECT_GT(totals.mid_op_kills, 0u);
  EXPECT_GT(totals.kills, 0u);
  EXPECT_GT(totals.corruptions, 0u);
  EXPECT_GT(totals.recoveries, 0u);
  EXPECT_GT(totals.detect_count, 0u);
}

TEST(ChaosCampaign, SummaryJsonCarriesSeedAndVerdicts) {
  std::ostringstream jsonl;
  ChaosConfig cfg = small_config(77, 24);
  ChaosRunner runner(cfg, &jsonl);
  const auto& s = runner.run();
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"seed\":77"), std::string::npos) << json;
  EXPECT_NE(json.find("\"violations\":"), std::string::npos);
  EXPECT_NE(json.find("\"detect_latency\""), std::string::npos);
  // The per-event log is one JSON object per line, each carrying the seed.
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"seed\":77"), std::string::npos) << line;
    ++n;
  }
  EXPECT_EQ(n, s.events);
}

}  // namespace
}  // namespace eccheck
