// obs::Tracer tests: disabled cost model, concurrent recording, per-thread
// span nesting, Chrome-trace export validity, and the built-in thread-pool /
// pipeline / codec instrumentation sites.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ec/parallel_codec.hpp"
#include "gf/simd.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/tracer.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/thread_pool.hpp"
#include "tests/json_checker.hpp"

namespace eccheck {
namespace {

using testutil::JsonChecker;
using testutil::count_occurrences;
using testutil::trace_names;

TEST(Tracer, DisabledRecordsNothing) {
  obs::Tracer t;  // disabled by default
  EXPECT_FALSE(t.enabled());
  {
    obs::ScopedSpan span(t, "never");
    EXPECT_FALSE(span.active());
  }
  t.record_span("manual", 0, 10);
  t.record_counter("depth", 3);
  EXPECT_EQ(t.span_count(), 0u);
  for (const auto& track : t.snapshot()) {
    EXPECT_TRUE(track.spans.empty());
    EXPECT_TRUE(track.counters.empty());
  }
}

TEST(Tracer, SpanOpenedWhileDisabledStaysDisabled) {
  obs::Tracer t;
  {
    obs::ScopedSpan span(t, "opened_disabled");
    t.enable();
  }  // destructor runs with the tracer enabled — still must not record
  t.disable();
  EXPECT_EQ(t.span_count(), 0u);
}

TEST(Tracer, ConcurrentThreadsExportValidChromeTrace) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  obs::Tracer t;
  t.enable();

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, i] {
      obs::Tracer::set_thread_name("worker" + std::to_string(i));
      for (int s = 0; s < kSpansPerThread; ++s) {
        obs::ScopedSpan outer(t, "outer");
        obs::ScopedSpan inner(t, "inner", /*bytes=*/4096);
        t.record_counter("iteration", s);
      }
    });
  }
  for (auto& th : threads) th.join();
  t.disable();

  EXPECT_EQ(t.span_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);

  obs::ChromeTraceWriter w;
  t.export_to(w, "tracer test");
  std::ostringstream os;
  w.write(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  // Every thread track is named, and byte-carrying spans get a rate arg.
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""),
            static_cast<std::size_t>(kThreads));
  EXPECT_NE(json.find("worker0"), std::string::npos);
  EXPECT_NE(json.find("\"GiB_per_s\""), std::string::npos);
  auto names = trace_names(json);
  EXPECT_TRUE(names.count("outer"));
  EXPECT_TRUE(names.count("inner"));
}

TEST(Tracer, SpansNestWellFormedPerThread) {
  obs::Tracer t;
  t.enable();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int rep = 0; rep < 20; ++rep) {
        obs::ScopedSpan a(t, "a");
        {
          obs::ScopedSpan b(t, "b");
          obs::ScopedSpan c(t, "c");
        }
        obs::ScopedSpan d(t, "d");
      }
    });
  }
  for (auto& th : threads) th.join();
  t.disable();

  for (const auto& track : t.snapshot()) {
    // Any two spans on one thread either nest or are disjoint — a partial
    // overlap would mean the per-thread buffers mixed records across
    // threads or ScopedSpan lifetimes interleaved impossibly.
    const auto& sp = track.spans;
    for (std::size_t i = 0; i < sp.size(); ++i) {
      for (std::size_t j = i + 1; j < sp.size(); ++j) {
        const bool disjoint =
            sp[i].end_ns <= sp[j].start_ns || sp[j].end_ns <= sp[i].start_ns;
        const bool i_in_j = sp[j].start_ns <= sp[i].start_ns &&
                            sp[i].end_ns <= sp[j].end_ns;
        const bool j_in_i = sp[i].start_ns <= sp[j].start_ns &&
                            sp[j].end_ns <= sp[i].end_ns;
        ASSERT_TRUE(disjoint || i_in_j || j_in_i)
            << sp[i].name << " [" << sp[i].start_ns << "," << sp[i].end_ns
            << ") vs " << sp[j].name << " [" << sp[j].start_ns << ","
            << sp[j].end_ns << ")";
      }
    }
    for (const auto& s : sp) {
      EXPECT_LE(s.start_ns, s.end_ns);
      EXPECT_GE(s.depth, 0);
    }
  }
}

TEST(Tracer, ClearDropsSpansButKeepsRegistrations) {
  obs::Tracer t;
  t.enable();
  { obs::ScopedSpan span(t, "x"); }
  EXPECT_EQ(t.span_count(), 1u);
  t.clear();
  EXPECT_EQ(t.span_count(), 0u);
  { obs::ScopedSpan span(t, "y"); }
  EXPECT_EQ(t.span_count(), 1u);
}

// --- built-in instrumentation sites ----------------------------------------
// These run against the global tracer (the sites are hardwired to it), so
// each test enables, runs, disables, snapshots, and clears.

std::set<std::string> global_span_names() {
  std::set<std::string> names;
  for (const auto& track : obs::Tracer::global().snapshot())
    for (const auto& s : track.spans) names.insert(s.name);
  return names;
}

TEST(TracerSites, ThreadPoolRecordsWaitRunAndQueueDepth) {
  auto& t = obs::Tracer::global();
  t.clear();
  t.enable();
  {
    runtime::ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 16; ++i)
      futs.push_back(pool.submit([&] { ++ran; }, "test.task"));
    for (auto& f : futs) f.get();
    EXPECT_EQ(ran.load(), 16);
    pool.parallel_for(32, [&](std::size_t) { ++ran; }, "test.chunks");
    EXPECT_EQ(ran.load(), 48);
  }
  t.disable();

  auto names = global_span_names();
  EXPECT_TRUE(names.count("pool.wait"));
  EXPECT_TRUE(names.count("test.task"));
  EXPECT_TRUE(names.count("test.chunks"));
  bool saw_worker = false, saw_depth = false;
  for (const auto& track : t.snapshot()) {
    if (track.name.rfind("pool/worker", 0) == 0 && !track.spans.empty())
      saw_worker = true;
    for (const auto& c : track.counters)
      if (c.name == "pool.queue_depth") saw_depth = true;
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_TRUE(saw_depth);
  t.clear();
}

TEST(TracerSites, PipelineStagesBecomeNamedTracks) {
  auto& t = obs::Tracer::global();
  t.clear();
  t.enable();
  std::vector<int> items(12, 0);
  std::vector<std::function<void(int&)>> stages = {
      [](int& v) { v += 1; },
      [](int& v) { v *= 2; },
  };
  runtime::run_pipeline(items, stages, 2, {"double_in", "double_out"});
  t.disable();

  for (int v : items) EXPECT_EQ(v, 2);
  std::set<std::string> track_names;
  for (const auto& track : t.snapshot())
    if (!track.spans.empty()) track_names.insert(track.name);
  EXPECT_TRUE(track_names.count("pipe/double_in"));
  EXPECT_TRUE(track_names.count("pipe/double_out"));
  auto names = global_span_names();
  EXPECT_TRUE(names.count("double_in"));
  EXPECT_TRUE(names.count("double_out"));
  t.clear();
}

TEST(TracerSites, CodecSlicesCarryBytes) {
  auto& t = obs::Tracer::global();
  t.clear();
  t.enable();
  {
    const ec::CrsCodec codec(2, 2, 8, ec::KernelMode::kGfTable);
    runtime::ThreadPool pool(2);
    const ec::ParallelCodec pcodec(codec, pool, /*slice_bytes=*/1024);
    const std::size_t P = 8192;
    std::vector<Buffer> data, parity;
    for (int i = 0; i < 2; ++i) {
      data.emplace_back(P, Buffer::Init::kUninitialized);
      fill_random(data.back().span(), static_cast<std::uint64_t>(i) + 1);
      parity.emplace_back(P, Buffer::Init::kZeroed);
    }
    std::vector<ByteSpan> in = {data[0].span(), data[1].span()};
    std::vector<MutableByteSpan> out = {parity[0].span(), parity[1].span()};
    pcodec.encode(in, out);
  }
  t.disable();

  // Kernel spans are suffixed with the dispatched ISA: "codec.slice[avx2]".
  const std::string slice_name = gf::simd::isa_span_name("codec.slice");
  const std::string encode_name = gf::simd::isa_span_name("codec.encode");
  std::uint64_t slice_bytes = 0;
  bool saw_encode = false;
  for (const auto& track : t.snapshot()) {
    for (const auto& s : track.spans) {
      if (s.name == slice_name) slice_bytes += s.bytes;
      if (s.name == encode_name) {
        saw_encode = true;
        EXPECT_EQ(s.bytes, 8192u * 2);
      }
    }
  }
  EXPECT_TRUE(saw_encode);
  // encode slices the packet range once (each slice handles every row for
  // its byte range), so slice spans account for exactly P bytes.
  EXPECT_EQ(slice_bytes, 8192u);
  t.clear();
}

}  // namespace
}  // namespace eccheck
