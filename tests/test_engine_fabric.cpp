// Differential suite for the fabric-generic ECCheck engine
// (core/fabric_engine.cpp): the SPMD save/load/prune protocol must produce
// byte-identical stores and bit-exact recovered shards whether it runs
//  * over cluster::VirtualFabric (one process drives all ranks), compared
//    against the original simulator engine (core/eccheck_engine.cpp), or
//  * over net::SocketTransport (one OS thread per rank here; one process
//    per rank in examples/transport_cli), compared against VirtualFabric.
// Also covers the torn-save contract (peer death mid-save fails fast and
// rolls the attempted version back) and FabricSession version retention.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <latch>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/fabric.hpp"
#include "core/eccheck_engine.hpp"
#include "core/fabric_engine.hpp"
#include "core/session.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "net/transport.hpp"

namespace eccheck {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/eccheck-fabtest-XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::vector<net::Endpoint> uds_endpoints(const TempDir& dir, int n) {
  std::vector<net::Endpoint> eps;
  for (int r = 0; r < n; ++r)
    eps.push_back(
        net::Endpoint::uds(dir.path + "/rank" + std::to_string(r) + ".sock"));
  return eps;
}

net::TransportOptions fast_opts(const TempDir& dir) {
  net::TransportOptions o;
  o.connect_timeout = net::Millis(500);
  o.connect_retries = 20;
  o.backoff_base = net::Millis(2);
  o.backoff_max = net::Millis(50);
  o.io_timeout = net::Millis(5000);
  o.remote_dir = dir.path + "/remote";
  return o;
}

using RankBody = std::function<void(int rank)>;

void run_ranks(int n, const RankBody& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

using StoreImage = std::map<std::string, Buffer>;

StoreImage snapshot(cluster::Store& s) {
  StoreImage img;
  for (const std::string& key : s.keys_with_prefix(""))
    img.emplace(key, s.get(key).clone());
  return img;
}

void expect_identical(const StoreImage& got, const StoreImage& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  auto a = got.begin();
  auto b = want.begin();
  for (; a != got.end(); ++a, ++b) {
    ASSERT_EQ(a->first, b->first) << what;
    EXPECT_TRUE(a->second == b->second)
        << what << ": key '" << a->first << "' differs";
  }
}

// Shared shapes: n = k + m nodes, g workers per node, W = n·g workers.
constexpr int kK = 2;
constexpr int kM = 2;
constexpr int kNodes = kK + kM;

dnn::CheckpointGenConfig gen_config(int world, std::uint64_t seed) {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kGPT2, 96, 2, 6, "fabtest");
  cfg.model.vocab = 384;
  cfg.parallelism = {2, world / 2, 1};
  cfg.seed = seed;
  return cfg;
}

core::ECCheckConfig engine_config(bool flush = false) {
  core::ECCheckConfig cfg;
  cfg.k = kK;
  cfg.m = kM;
  cfg.packet_size = kib(16);
  cfg.flush_to_remote = flush;
  return cfg;
}

std::vector<const dnn::StateDict*> pointers(
    const std::vector<dnn::StateDict>& shards) {
  std::vector<const dnn::StateDict*> p;
  for (const auto& sd : shards) p.push_back(&sd);
  return p;
}

std::vector<std::uint64_t> digests_of(const std::vector<dnn::StateDict>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& sd : v) out.push_back(sd.digest());
  return out;
}

cluster::ClusterConfig vc_config(int gpus) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.gpus_per_node = gpus;
  return cfg;
}

// ---------------------------------------------------------------------------
// VirtualFabric vs the original simulator engine: the anchor of the whole
// bit-exactness chain. Same shards, one engine.save() on one cluster and
// one fabric_save() on another — every node's store and the remote store
// must come out byte-identical, and the full kill/replace/load cycle must
// agree too.
// ---------------------------------------------------------------------------

TEST(FabricEngine, VirtualFabricSaveMatchesSimulatorEngineByteExact) {
  const int g = 2, W = kNodes * g;
  auto shards = dnn::make_sharded_checkpoint(gen_config(W, 7));
  const auto want = digests_of(shards);

  cluster::VirtualCluster sim(vc_config(g));
  core::ECCheckEngine engine(engine_config(/*flush=*/true));
  engine.save(sim, shards, 1);

  cluster::VirtualCluster fab_vc(vc_config(g));
  cluster::VirtualFabric fabric(fab_vc);
  core::fabric_save(fabric, engine_config(/*flush=*/true), pointers(shards),
                    1);

  for (int node = 0; node < kNodes; ++node)
    expect_identical(snapshot(fab_vc.host(node)), snapshot(sim.host(node)),
                     "node " + std::to_string(node) + " after save");
  expect_identical(snapshot(fab_vc.remote()), snapshot(sim.remote()),
                   "remote store after save");

  // Same failure on both, then simulator-load vs fabric-load.
  for (cluster::VirtualCluster* c : {&sim, &fab_vc}) {
    c->kill(1);
    c->kill(3);
    c->replace(1);
    c->replace(3);
  }
  std::vector<dnn::StateDict> sim_out, fab_out;
  auto sim_rep = engine.load(sim, 1, sim_out);
  auto fab_rep = core::fabric_load(fabric, engine_config(true), 1, fab_out);
  ASSERT_TRUE(sim_rep.success) << sim_rep.detail;
  ASSERT_TRUE(fab_rep.success) << fab_rep.detail;
  EXPECT_EQ(fab_rep.detail, sim_rep.detail);
  ASSERT_EQ(fab_out.size(), static_cast<std::size_t>(W));
  for (int w = 0; w < W; ++w)
    EXPECT_EQ(fab_out[static_cast<std::size_t>(w)].digest(),
              want[static_cast<std::size_t>(w)])
        << "worker " << w;
  for (int node = 0; node < kNodes; ++node)
    expect_identical(snapshot(fab_vc.host(node)), snapshot(sim.host(node)),
                     "node " + std::to_string(node) + " after load");
}

TEST(FabricEngine, EngineInterfaceDispatchesFabricOverloads) {
  const int g = 1, W = kNodes * g;
  auto shards = dnn::make_sharded_checkpoint(gen_config(W, 3));
  cluster::VirtualCluster vc(vc_config(g));
  cluster::VirtualFabric fabric(vc);
  core::ECCheckEngine eccheck(engine_config());
  ckpt::CheckpointEngine& engine = eccheck;  // through the base interface
  engine.save(fabric, pointers(shards), 1);
  std::vector<dnn::StateDict> out;
  EXPECT_TRUE(engine.load(fabric, 1, out).success);
  EXPECT_EQ(digests_of(out), digests_of(shards));
}

// ---------------------------------------------------------------------------
// Socket transport vs VirtualFabric: the same FabricSession sequence —
// three saves under a retention window of two (so version 1 is pruned),
// SIGKILL-equivalent peer replacement, recovery — over UDS threads and over
// the simulator, compared store-for-store.
// ---------------------------------------------------------------------------

void session_sequence(core::FabricSession& session, cluster::Fabric& fabric,
                      int g, const std::function<void()>& fail_and_replace) {
  const int W = fabric.world_size() * g;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    std::vector<dnn::StateDict> mine;
    for (int w : session.driven_workers())
      mine.push_back(dnn::make_worker_state_dict(gen_config(W, seed), w));
    session.save(pointers(mine));
  }
  fail_and_replace();
}

std::vector<std::uint64_t> expected_digests(int W, std::uint64_t seed) {
  std::vector<std::uint64_t> d;
  for (int w = 0; w < W; ++w)
    d.push_back(dnn::make_worker_state_dict(gen_config(W, seed), w).digest());
  return d;
}

TEST(FabricEngine, SocketSessionCycleMatchesVirtualFabricByteExact) {
  const int g = 2, W = kNodes * g;
  const std::vector<int> replaced = {1, 3};
  const auto want = expected_digests(W, 23);  // newest surviving version

  TempDir dir;
  auto eps = uds_endpoints(dir, kNodes);
  std::vector<StoreImage> socket_imgs(kNodes);
  std::vector<std::vector<std::uint64_t>> socket_digests(kNodes);
  std::vector<std::int64_t> socket_versions(kNodes, -1);
  std::latch saved(kNodes), rebuilt(kNodes);

  run_ranks(kNodes, [&](int rank) {
    auto fabric =
        std::make_unique<net::SocketTransport>(rank, eps, fast_opts(dir));
    const bool is_replaced =
        std::find(replaced.begin(), replaced.end(), rank) != replaced.end();
    {
      core::FabricSession session(*fabric, engine_config(), g,
                                  /*retain_versions=*/2);
      session_sequence(session, *fabric, g, [&] {
        saved.arrive_and_wait();
        if (is_replaced) {
          fabric.reset();  // the process dies; volatile store is gone
          fabric = std::make_unique<net::SocketTransport>(rank, eps,
                                                          fast_opts(dir));
        } else {
          for (int dead : replaced) fabric->reset_peer(dead);
        }
        rebuilt.arrive_and_wait();
      });
    }
    // Recovery runs in a fresh session (a restarted job would not carry the
    // old one), including on the surviving ranks.
    core::FabricSession session(*fabric, engine_config(), g, 2);
    std::vector<dnn::StateDict> out;
    auto r = session.load(out);
    ASSERT_TRUE(r.report.success) << "rank " << rank << ": "
                                  << r.report.detail;
    socket_versions[static_cast<std::size_t>(rank)] = r.version;
    socket_digests[static_cast<std::size_t>(rank)] = digests_of(out);
    socket_imgs[static_cast<std::size_t>(rank)] =
        snapshot(fabric->store(rank));
  });

  // Reference: byte-identical sequence over the simulator.
  cluster::VirtualCluster vc(vc_config(g));
  cluster::VirtualFabric fabric(vc);
  std::vector<std::uint64_t> ref_digests;
  std::int64_t ref_version = -1;
  {
    core::FabricSession session(fabric, engine_config(), g, 2);
    session_sequence(session, fabric, g, [&] {
      for (int dead : replaced) vc.kill(dead);
      for (int dead : replaced) vc.replace(dead);
    });
  }
  {
    core::FabricSession session(fabric, engine_config(), g, 2);
    std::vector<dnn::StateDict> out;
    auto r = session.load(out);
    ASSERT_TRUE(r.report.success) << r.report.detail;
    ref_version = r.version;
    ref_digests = digests_of(out);
  }
  EXPECT_EQ(ref_version, 3);  // version 1 pruned, 2 retained, 3 newest
  EXPECT_EQ(ref_digests, want);

  for (int rank = 0; rank < kNodes; ++rank) {
    EXPECT_EQ(socket_versions[static_cast<std::size_t>(rank)], ref_version)
        << "rank " << rank;
    // Each socket rank recovered its own g shards; the reference holds all.
    const auto& got = socket_digests[static_cast<std::size_t>(rank)];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(g)) << "rank " << rank;
    for (int l = 0; l < g; ++l)
      EXPECT_EQ(got[static_cast<std::size_t>(l)],
                want[static_cast<std::size_t>(rank * g + l)])
          << "rank " << rank << " shard " << l;
    expect_identical(socket_imgs[static_cast<std::size_t>(rank)],
                     snapshot(vc.host(rank)),
                     "rank " + std::to_string(rank) + " store");
  }
}

TEST(FabricEngine, TcpSessionRecoversByteExact) {
  const int g = 1, W = kNodes * g;
  const auto want = expected_digests(W, 55);

  TempDir dir;
  // TCP with ephemeral ports: bind all listeners on port 0 up front, then
  // exchange the real ports via set_peers() — the documented handshake.
  std::vector<net::Endpoint> placeholder(
      kNodes, net::Endpoint::tcp("127.0.0.1", 0));
  std::vector<std::unique_ptr<net::SocketTransport>> transports;
  std::vector<net::Endpoint> real;
  for (int r = 0; r < kNodes; ++r) {
    transports.push_back(std::make_unique<net::SocketTransport>(
        r, placeholder, fast_opts(dir)));
    real.push_back(transports.back()->listen_endpoint());
  }
  for (auto& t : transports) t->set_peers(real);

  std::vector<std::vector<std::uint64_t>> got(kNodes);
  run_ranks(kNodes, [&](int rank) {
    net::SocketTransport& fabric = *transports[static_cast<std::size_t>(rank)];
    core::FabricSession session(fabric, engine_config(), g, 2);
    std::vector<dnn::StateDict> mine;
    mine.push_back(dnn::make_worker_state_dict(gen_config(W, 55), rank));
    session.save(pointers(mine));
    std::vector<dnn::StateDict> out;
    auto r = session.load(out);
    ASSERT_TRUE(r.report.success) << r.report.detail;
    got[static_cast<std::size_t>(rank)] = digests_of(out);
  });
  for (int rank = 0; rank < kNodes; ++rank) {
    ASSERT_EQ(got[static_cast<std::size_t>(rank)].size(), 1u);
    EXPECT_EQ(got[static_cast<std::size_t>(rank)][0],
              want[static_cast<std::size_t>(rank)]);
  }
}

// ---------------------------------------------------------------------------
// Torn save: a peer that dies before participating in a save must surface
// as CheckFailure on every survivor within the io-timeout budget (never a
// hang), the torn version must be rolled back, and recovery must land on
// the previous committed version.
// ---------------------------------------------------------------------------

TEST(FabricEngine, TornSaveFailsFastRollsBackAndRecoversOlderVersion) {
  const int g = 1, W = kNodes * g;
  const int victim = 1;
  const auto want = expected_digests(W, 77);

  TempDir dir;
  auto eps = uds_endpoints(dir, kNodes);
  std::latch ready(kNodes), torn(kNodes - 1), replaced(kNodes);
  std::vector<std::int64_t> versions(kNodes, -1);
  std::vector<std::vector<std::uint64_t>> got(kNodes);

  run_ranks(kNodes, [&](int rank) {
    auto fabric =
        std::make_unique<net::SocketTransport>(rank, eps, fast_opts(dir));
    core::FabricSession session(*fabric, engine_config(), g, 2);
    auto my_shard = [&](std::uint64_t seed) {
      std::vector<dnn::StateDict> mine;
      mine.push_back(dnn::make_worker_state_dict(gen_config(W, seed), rank));
      return mine;
    };
    {
      auto mine = my_shard(77);
      session.save(pointers(mine));
    }
    ready.arrive_and_wait();

    if (rank == victim) {
      fabric.reset();  // dies before save(v2) — never enters the collective
      torn.wait();     // survivors observed the failure
      fabric = std::make_unique<net::SocketTransport>(rank, eps,
                                                      fast_opts(dir));
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      auto mine = my_shard(78);
      EXPECT_THROW(session.save(pointers(mine)), CheckFailure)
          << "rank " << rank;
      const auto waited = std::chrono::steady_clock::now() - t0;
      EXPECT_LT(waited, std::chrono::seconds(30))
          << "rank " << rank << " did not fail fast";
      // The torn version left nothing behind on this rank.
      EXPECT_TRUE(
          fabric->store(rank).keys_with_prefix("ec/2/").empty())
          << "rank " << rank;
      EXPECT_TRUE(
          fabric->store(rank).keys_with_prefix("tmp/").empty())
          << "rank " << rank;
      // The aborted collective may have left half-delivered frames between
      // the survivors too — every survivor re-pools all connections.
      fabric->reset_all_peers();
      torn.count_down();
    }
    replaced.arrive_and_wait();

    // Fresh session on every rank (as after a job restart): recovery must
    // agree on version 1 and reproduce its bytes.
    core::FabricSession fresh(*fabric, engine_config(), g, 2);
    std::vector<dnn::StateDict> out;
    auto r = fresh.load(out);
    ASSERT_TRUE(r.report.success) << "rank " << rank << ": "
                                  << r.report.detail;
    versions[static_cast<std::size_t>(rank)] = r.version;
    got[static_cast<std::size_t>(rank)] = digests_of(out);

    // And the next save must work again, agreeing on version 2.
    auto mine = my_shard(79);
    fresh.save(pointers(mine));
    EXPECT_EQ(fresh.latest_version(), 2) << "rank " << rank;
  });

  for (int rank = 0; rank < kNodes; ++rank) {
    EXPECT_EQ(versions[static_cast<std::size_t>(rank)], 1) << "rank " << rank;
    ASSERT_EQ(got[static_cast<std::size_t>(rank)].size(), 1u);
    EXPECT_EQ(got[static_cast<std::size_t>(rank)][0],
              want[static_cast<std::size_t>(rank)])
        << "rank " << rank;
  }
}

// ---------------------------------------------------------------------------
// Remote fallback over the fabric: flush-to-remote on save, then more than
// m nodes lose their volatile stores — recovery must refetch from the
// file-backed remote store, byte-exact.
// ---------------------------------------------------------------------------

TEST(FabricEngine, RemoteFallbackRecoversAfterCatastrophicLoss) {
  const int g = 1, W = kNodes * g;
  const std::vector<int> dead = {0, 1, 2};  // > m = 2 failures
  const auto want = expected_digests(W, 91);

  TempDir dir;
  auto eps = uds_endpoints(dir, kNodes);
  std::latch saved(kNodes), rebuilt(kNodes);
  std::vector<std::vector<std::uint64_t>> got(kNodes);

  run_ranks(kNodes, [&](int rank) {
    auto fabric =
        std::make_unique<net::SocketTransport>(rank, eps, fast_opts(dir));
    const bool is_dead =
        std::find(dead.begin(), dead.end(), rank) != dead.end();
    {
      core::FabricSession session(*fabric, engine_config(/*flush=*/true), g,
                                  2);
      std::vector<dnn::StateDict> mine;
      mine.push_back(dnn::make_worker_state_dict(gen_config(W, 91), rank));
      session.save(pointers(mine));
    }
    saved.arrive_and_wait();
    if (is_dead) {
      fabric.reset();
      fabric = std::make_unique<net::SocketTransport>(rank, eps,
                                                      fast_opts(dir));
    } else {
      for (int d : dead) fabric->reset_peer(d);
    }
    rebuilt.arrive_and_wait();

    core::FabricSession session(*fabric, engine_config(true), g, 2);
    std::vector<dnn::StateDict> out;
    auto r = session.load(out);
    ASSERT_TRUE(r.report.success) << "rank " << rank << ": "
                                  << r.report.detail;
    EXPECT_NE(r.report.detail.find("remote fallback"), std::string::npos)
        << "rank " << rank << ": " << r.report.detail;
    got[static_cast<std::size_t>(rank)] = digests_of(out);
  });
  for (int rank = 0; rank < kNodes; ++rank) {
    ASSERT_EQ(got[static_cast<std::size_t>(rank)].size(), 1u);
    EXPECT_EQ(got[static_cast<std::size_t>(rank)][0],
              want[static_cast<std::size_t>(rank)])
        << "rank " << rank;
  }
}

}  // namespace
}  // namespace eccheck
