// Group-based ECCheck (§VI): independent per-group protocols, failure
// isolation, remote-flush namespacing, and flat scale-out timing.
#include <gtest/gtest.h>

#include "core/grouped_engine.hpp"
#include "dnn/checkpoint_gen.hpp"

namespace eccheck {
namespace {

using cluster::ClusterConfig;
using cluster::VirtualCluster;

ClusterConfig cluster_config(int nodes, int gpus = 1) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.gpus_per_node = gpus;
  return cfg;
}

std::vector<dnn::StateDict> make_shards(int world, std::uint64_t seed = 9) {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kT5, 64, 1, world, "grp");
  cfg.model.vocab = 256;
  cfg.parallelism = {1, world, 1};
  cfg.seed = seed;
  return dnn::make_sharded_checkpoint(cfg);
}

core::GroupedConfig grouped_config(int group_size = 4) {
  core::GroupedConfig cfg;
  cfg.group_size = group_size;
  cfg.per_group.k = group_size / 2;
  cfg.per_group.m = group_size - group_size / 2;
  cfg.per_group.packet_size = kib(8);
  return cfg;
}

std::vector<std::uint64_t> digests_of(const std::vector<dnn::StateDict>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& sd : v) out.push_back(sd.digest());
  return out;
}

TEST(Grouped, SaveLoadRoundTrip) {
  VirtualCluster cluster(cluster_config(8));
  auto shards = make_shards(8);
  auto want = digests_of(shards);
  core::GroupedECCheckEngine engine(grouped_config(4));
  EXPECT_EQ(engine.num_groups(cluster), 2);

  auto save = engine.save(cluster, shards, 1);
  EXPECT_GT(save.total_time, 0.0);
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_EQ(digests_of(out), want);
}

TEST(Grouped, ToleratesMFailuresPerGroupSimultaneously) {
  VirtualCluster cluster(cluster_config(8));
  auto shards = make_shards(8);
  auto want = digests_of(shards);
  core::GroupedECCheckEngine engine(grouped_config(4));
  engine.save(cluster, shards, 1);

  // Two failures in EACH group at once: 4 concurrent failures total.
  for (int v : {0, 1, 4, 5}) {
    cluster.kill(v);
    cluster.replace(v);
  }
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_EQ(digests_of(out), want);
}

TEST(Grouped, FailsWhenOneGroupLosesTooMany) {
  VirtualCluster cluster(cluster_config(8));
  auto shards = make_shards(8);
  core::GroupedECCheckEngine engine(grouped_config(4));
  engine.save(cluster, shards, 1);

  // Three failures concentrated in group 0 (> m = 2): unrecoverable, even
  // though the same count spread across groups would be fine.
  for (int v : {0, 1, 2}) {
    cluster.kill(v);
    cluster.replace(v);
  }
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  EXPECT_FALSE(load.success);
  EXPECT_NE(load.detail.find("group 0"), std::string::npos);
}

TEST(Grouped, SameCountSpreadAcrossGroupsRecovers) {
  VirtualCluster cluster(cluster_config(8));
  auto shards = make_shards(8);
  auto want = digests_of(shards);
  core::GroupedECCheckEngine engine(grouped_config(4));
  engine.save(cluster, shards, 1);

  for (int v : {0, 2, 5}) {  // 2 in group 0, 1 in group 1
    cluster.kill(v);
    cluster.replace(v);
  }
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_EQ(digests_of(out), want);
}

TEST(Grouped, RemoteFlushNamespacesDoNotCollide) {
  VirtualCluster cluster(cluster_config(8));
  auto shards = make_shards(8);
  auto want = digests_of(shards);
  auto cfg = grouped_config(4);
  cfg.per_group.flush_to_remote = true;
  core::GroupedECCheckEngine engine(cfg);
  engine.save(cluster, shards, 1);

  // Wipe group 0 completely (3 > m failures): only the remote flush of
  // *its own* chunks can rescue it.
  for (int v : {0, 1, 2, 3}) {
    cluster.kill(v);
    cluster.replace(v);
  }
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_EQ(digests_of(out), want);
}

TEST(Grouped, ScaleOutKeepsSaveTimeFlat) {
  // §VI: adding groups must not lengthen checkpointing — groups use
  // disjoint nodes and overlap in time.
  double t2 = 0, t8 = 0;
  for (int groups : {2, 8}) {
    const int nodes = 4 * groups;
    VirtualCluster cluster(cluster_config(nodes));
    auto shards = make_shards(nodes);
    core::GroupedECCheckEngine engine(grouped_config(4));
    double t = engine.save(cluster, shards, 1).total_time;
    (groups == 2 ? t2 : t8) = t;
  }
  EXPECT_NEAR(t8, t2, t2 * 0.05);
}

TEST(Grouped, MatchesUngroupedWhenSingleGroup) {
  VirtualCluster c1(cluster_config(4));
  VirtualCluster c2(cluster_config(4));
  auto shards = make_shards(4);
  core::GroupedECCheckEngine grouped(grouped_config(4));
  core::ECCheckConfig plain_cfg;
  plain_cfg.k = 2;
  plain_cfg.m = 2;
  plain_cfg.packet_size = kib(8);
  core::ECCheckEngine plain(plain_cfg);

  auto rg = grouped.save(c1, shards, 1);
  auto rp = plain.save(c2, shards, 1);
  EXPECT_NEAR(rg.total_time, rp.total_time, rp.total_time * 1e-9);
  EXPECT_EQ(rg.network_bytes, rp.network_bytes);
}

TEST(Grouped, RejectsBadConfigs) {
  core::GroupedConfig bad;
  bad.group_size = 4;
  bad.per_group.k = 2;
  bad.per_group.m = 1;  // k + m != group_size
  EXPECT_THROW(core::GroupedECCheckEngine{bad}, CheckFailure);

  VirtualCluster cluster(cluster_config(6));
  core::GroupedECCheckEngine engine(grouped_config(4));
  auto shards = make_shards(6);
  EXPECT_THROW(engine.save(cluster, shards, 1), CheckFailure);
}

}  // namespace
}  // namespace eccheck
