// Serialization-free protocol tests: decompose → pack → unpack round trips.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "ec/crs_codec.hpp"
#include "dnn/checkpoint_gen.hpp"

namespace eccheck::core {
namespace {

dnn::StateDict sample_state_dict(std::uint64_t seed = 3) {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kBERT, 128, 2, 4, "proto");
  cfg.parallelism = {2, 2, 1};
  cfg.seed = seed;
  return dnn::make_worker_state_dict(cfg, 1);
}

TEST(Protocol, DecomposeSeparatesComponents) {
  dnn::StateDict sd = sample_state_dict();
  Decomposition d = decompose(sd);
  EXPECT_GT(d.metadata_blob.size(), 0u);
  EXPECT_GT(d.keys_blob.size(), 0u);
  EXPECT_EQ(d.tensor_data.size(), sd.tensors().size());
  EXPECT_EQ(d.tensor_bytes, sd.tensor_bytes());
  // Metadata + keys are tiny relative to tensor data (§III-C).
  EXPECT_LT(d.metadata_blob.size() + d.keys_blob.size(), d.tensor_bytes / 10);
}

TEST(Protocol, PacketsNeededRoundsUp) {
  EXPECT_EQ(packets_needed(0, 64), 0u);
  EXPECT_EQ(packets_needed(1, 64), 1u);
  EXPECT_EQ(packets_needed(64, 64), 1u);
  EXPECT_EQ(packets_needed(65, 64), 2u);
}

TEST(Protocol, PackUnpackRoundTrip) {
  dnn::StateDict sd = sample_state_dict();
  Decomposition d = decompose(sd);
  const std::size_t P = 4096;
  const std::size_t B = packets_needed(d.tensor_bytes, P);
  auto packets = pack_packets(d.tensor_data, P, B);
  ASSERT_EQ(packets.size(), B);
  for (const auto& p : packets) EXPECT_EQ(p.size(), P);

  dnn::StateDict skel = dnn::make_skeleton(
      dnn::deserialize_metadata(d.metadata_blob.span()),
      dnn::deserialize_tensor_keys(d.keys_blob.span()));
  std::vector<ByteSpan> views;
  for (const auto& p : packets) views.push_back(p.span());
  unpack_packets(views, skel);
  EXPECT_EQ(skel, sd);
  EXPECT_EQ(skel.digest(), sd.digest());
}

TEST(Protocol, PaddingPacketsAreZeroed) {
  dnn::StateDict sd = sample_state_dict();
  Decomposition d = decompose(sd);
  const std::size_t P = 4096;
  const std::size_t needed = packets_needed(d.tensor_bytes, P);
  // Over-allocate by 2 packets (worker padding to uniform B).
  auto packets = pack_packets(d.tensor_data, P, needed + 2);
  EXPECT_EQ(packets[needed + 1], Buffer(P));
  // Tail padding in the last used packet is zero too.
  const std::size_t used_tail = d.tensor_bytes % P;
  if (used_tail != 0) {
    auto tail = packets[needed - 1].subspan(used_tail, P - used_tail);
    for (std::byte b : tail) EXPECT_EQ(b, std::byte{0});
  }
}

TEST(Protocol, PackRejectsOverflow) {
  dnn::StateDict sd = sample_state_dict();
  Decomposition d = decompose(sd);
  EXPECT_THROW(pack_packets(d.tensor_data, 64,
                            packets_needed(d.tensor_bytes, 64) - 1),
               CheckFailure);
}

TEST(Protocol, UnpackRejectsShortPackets) {
  dnn::StateDict sd = sample_state_dict();
  Decomposition d = decompose(sd);
  dnn::StateDict skel = dnn::make_skeleton(
      dnn::deserialize_metadata(d.metadata_blob.span()),
      dnn::deserialize_tensor_keys(d.keys_blob.span()));
  Buffer one(64);
  std::vector<ByteSpan> views{one.span()};
  EXPECT_THROW(unpack_packets(views, skel), CheckFailure);
}

TEST(Protocol, TensorBoundariesCrossPackets) {
  // A tensor larger than the packet size must split and reassemble cleanly.
  dnn::StateDict sd;
  dnn::Tensor big(dnn::DType::kU8, {10000});
  fill_random(big.bytes(), 9);
  sd.add_tensor("big", std::move(big));
  dnn::Tensor small(dnn::DType::kU8, {10});
  fill_random(small.bytes(), 10);
  sd.add_tensor("small", std::move(small));
  sd.metadata()["iteration"] = std::int64_t{1};

  Decomposition d = decompose(sd);
  auto packets = pack_packets(d.tensor_data, 4096,
                              packets_needed(d.tensor_bytes, 4096));
  dnn::StateDict skel = dnn::make_skeleton(
      dnn::deserialize_metadata(d.metadata_blob.span()),
      dnn::deserialize_tensor_keys(d.keys_blob.span()));
  std::vector<ByteSpan> views;
  for (const auto& p : packets) views.push_back(p.span());
  unpack_packets(views, skel);
  EXPECT_EQ(skel, sd);
}

TEST(Protocol, RoundTripSurvivesEncodeDecodeOfPackets) {
  // End-to-end through the codec: pack → encode → drop data → decode →
  // unpack, the actual ECCheck data path.
  dnn::StateDict sd = sample_state_dict(77);
  Decomposition d = decompose(sd);
  const std::size_t P = 8192;
  const int k = 2, m = 2;
  const std::size_t B = packets_needed(d.tensor_bytes, P);
  auto packets = pack_packets(d.tensor_data, P, B);

  ec::CrsCodec codec(k, m, 8);
  for (std::size_t b = 0; b + 1 < B; b += 2) {
    // Treat consecutive packet pairs as the two data chunks of a stripe.
    std::vector<Buffer> parity;
    parity.emplace_back(P);
    parity.emplace_back(P);
    std::vector<ByteSpan> in{packets[b].span(), packets[b + 1].span()};
    std::vector<MutableByteSpan> out{parity[0].span(), parity[1].span()};
    codec.encode(in, out);

    // Lose both data packets; recover from the two parities.
    std::vector<Buffer> rec;
    rec.emplace_back(P, Buffer::Init::kUninitialized);
    rec.emplace_back(P, Buffer::Init::kUninitialized);
    std::vector<ByteSpan> surv{parity[0].span(), parity[1].span()};
    std::vector<MutableByteSpan> ro{rec[0].span(), rec[1].span()};
    codec.decode({2, 3}, surv, ro);
    packets[b] = std::move(rec[0]);
    packets[b + 1] = std::move(rec[1]);
  }

  dnn::StateDict skel = dnn::make_skeleton(
      dnn::deserialize_metadata(d.metadata_blob.span()),
      dnn::deserialize_tensor_keys(d.keys_blob.span()));
  std::vector<ByteSpan> views;
  for (const auto& p : packets) views.push_back(p.span());
  unpack_packets(views, skel);
  EXPECT_EQ(skel.digest(), sd.digest());
}

}  // namespace
}  // namespace eccheck::core
