// Placement planner tests: sweep-line pairing vs brute force, §IV-B target
// rules, and the m·s·W communication-volume law of §V-F.
#include <gtest/gtest.h>

#include <set>

#include "core/placement.hpp"

namespace eccheck::core {
namespace {

/// Reference: greedy maximum-overlap assignment by exhaustive search.
std::vector<int> brute_force_pairing(const std::vector<IndexInterval>& origin,
                                     const std::vector<IndexInterval>& data) {
  struct Cand {
    int ov, d, o;
  };
  std::vector<Cand> cands;
  for (std::size_t d = 0; d < data.size(); ++d)
    for (std::size_t o = 0; o < origin.size(); ++o) {
      int ov = overlap(origin[o], data[d]);
      if (ov > 0)
        cands.push_back({ov, static_cast<int>(d), static_cast<int>(o)});
    }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.ov != b.ov) return a.ov > b.ov;
    if (a.d != b.d) return a.d < b.d;
    return a.o < b.o;
  });
  std::vector<int> assign(data.size(), -1);
  std::vector<bool> used(origin.size(), false);
  for (const auto& c : cands) {
    if (assign[static_cast<std::size_t>(c.d)] >= 0 ||
        used[static_cast<std::size_t>(c.o)])
      continue;
    assign[static_cast<std::size_t>(c.d)] = c.o;
    used[static_cast<std::size_t>(c.o)] = true;
  }
  for (auto& a : assign) {
    if (a >= 0) continue;
    for (std::size_t o = 0; o < origin.size(); ++o)
      if (!used[o]) {
        a = static_cast<int>(o);
        used[o] = true;
        break;
      }
  }
  return assign;
}

TEST(SweepLine, MatchesBruteForceAcrossTopologies) {
  for (int n : {2, 3, 4, 6, 8, 12}) {
    for (int g : {1, 2, 4}) {
      const int W = n * g;
      for (int k = 1; k <= n; ++k) {
        if (W % k != 0) continue;
        std::vector<IndexInterval> origin, data;
        for (int i = 0; i < n; ++i) origin.push_back({i * g, (i + 1) * g});
        for (int c = 0; c < k; ++c)
          data.push_back({c * (W / k), (c + 1) * (W / k)});
        EXPECT_EQ(max_overlap_pairing(origin, data),
                  brute_force_pairing(origin, data))
            << "n=" << n << " g=" << g << " k=" << k;
      }
    }
  }
}

TEST(SweepLine, PaperFig9Example) {
  // 3 nodes × 2 GPUs, k=2, m=1: nodes 0 and 2 become data nodes, node 1 the
  // parity node (Fig. 9a is the cheaper choice).
  PlacementConfig cfg;
  cfg.num_nodes = 3;
  cfg.gpus_per_node = 2;
  cfg.k = 2;
  cfg.m = 1;
  Placement p = plan_placement(cfg);
  EXPECT_EQ(p.data_nodes, (std::vector<int>{0, 2}));
  EXPECT_EQ(p.parity_nodes, (std::vector<int>{1}));
}

TEST(Placement, RolesPartitionNodes) {
  for (auto [n, g, k] : std::vector<std::array<int, 3>>{
           {4, 4, 2}, {4, 1, 2}, {6, 2, 3}, {8, 2, 4}, {6, 2, 2}, {5, 2, 2}}) {
    PlacementConfig cfg;
    cfg.num_nodes = n;
    cfg.gpus_per_node = g;
    cfg.k = k;
    cfg.m = n - k;
    if ((n * g) % k != 0) continue;
    Placement p = plan_placement(cfg);
    std::set<int> all;
    for (int d : p.data_nodes) all.insert(d);
    for (int q : p.parity_nodes) all.insert(q);
    EXPECT_EQ(static_cast<int>(all.size()), n);
    EXPECT_EQ(static_cast<int>(p.data_nodes.size()), k);
    EXPECT_EQ(static_cast<int>(p.parity_nodes.size()), n - k);
    // Role lookups agree.
    for (int node = 0; node < n; ++node) {
      EXPECT_NE(p.is_data_node(node), p.is_parity_node(node));
      int row = p.generator_row_of_node(node);
      if (p.is_data_node(node))
        EXPECT_EQ(p.data_nodes[static_cast<std::size_t>(row)], node);
      else
        EXPECT_EQ(p.parity_nodes[static_cast<std::size_t>(row - k)], node);
    }
  }
}

TEST(Placement, ReductionCountIsWOverKTimesM) {
  PlacementConfig cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 4;
  cfg.k = 2;
  cfg.m = 2;
  Placement p = plan_placement(cfg);
  // W/k · m = 16/2 · 2 = 16 reduction ops (§IV-B2).
  EXPECT_EQ(p.reductions.size(), 16u);
  for (const auto& op : p.reductions) {
    EXPECT_EQ(op.participants.size(), 2u);
    // The target is one of the participants.
    EXPECT_NE(std::find(op.participants.begin(), op.participants.end(),
                        op.target_worker),
              op.participants.end());
    // Participants come one from each data chunk, same relative index.
    EXPECT_EQ(op.participants[0] % p.workers_per_chunk(),
              op.participants[1] % p.workers_per_chunk());
  }
}

TEST(Placement, TargetsPreferParityNodes) {
  PlacementConfig cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 4;
  cfg.k = 2;
  cfg.m = 2;
  Placement p = plan_placement(cfg);
  int on_parity = 0;
  for (const auto& op : p.reductions) {
    bool group_has_parity_worker = false;
    for (int w : op.participants)
      if (node_of(cfg, w) == op.dest_node) group_has_parity_worker = true;
    if (group_has_parity_worker) {
      // Rule: such groups must place the result directly on the parity node.
      EXPECT_EQ(node_of(cfg, op.target_worker), op.dest_node);
      ++on_parity;
    }
  }
  EXPECT_GT(on_parity, 0);
}

TEST(Placement, CommVolumeLawMsW) {
  // §V-F: total communication volume per checkpoint is m·s·W (unit shard).
  for (auto [n, g, k] : std::vector<std::array<int, 3>>{
           {4, 4, 2}, {4, 1, 2}, {6, 2, 3}, {8, 4, 4}, {8, 2, 6}, {6, 3, 2}}) {
    PlacementConfig cfg;
    cfg.num_nodes = n;
    cfg.gpus_per_node = g;
    cfg.k = k;
    cfg.m = n - k;
    const int W = n * g;
    if (W % k != 0) continue;
    Placement p = plan_placement(cfg);
    CommVolume v = nominal_comm_volume(p, 1.0);
    EXPECT_DOUBLE_EQ(v.total(), static_cast<double>(cfg.m) * W)
        << "n=" << n << " g=" << g << " k=" << k;
    // Co-location can only reduce traffic.
    CommVolume a = actual_comm_volume(p, 1.0);
    EXPECT_LE(a.total(), v.total() + 1e-9);
  }
}

TEST(Placement, ReductionPairsNeverCoLocated) {
  // Participants of a reduction group come from different data chunks whose
  // worker ranges are at least per_chunk ≥ g apart, so every chain hop is
  // inter-node and the actual volume equals the paper's nominal accounting.
  PlacementConfig cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 4;
  cfg.k = 2;
  cfg.m = 2;
  Placement p = plan_placement(cfg);
  for (const auto& op : p.reductions) {
    std::set<int> nodes;
    for (int w : op.participants) nodes.insert(node_of(cfg, w));
    EXPECT_EQ(nodes.size(), op.participants.size());
  }
  EXPECT_DOUBLE_EQ(actual_comm_volume(p, 1.0).total(),
                   nominal_comm_volume(p, 1.0).total());
}

TEST(Placement, PerDeviceVolumeIndependentOfClusterSize) {
  // §V-F scalability claim: per-device volume = m·s, constant in n.
  for (int n : {4, 8, 16, 32}) {
    PlacementConfig cfg;
    cfg.num_nodes = n;
    cfg.gpus_per_node = 2;
    cfg.k = n / 2;
    cfg.m = n / 2;
    Placement p = plan_placement(cfg);
    double per_device =
        nominal_comm_volume(p, 1.0).total() / (n * cfg.gpus_per_node);
    EXPECT_DOUBLE_EQ(per_device, static_cast<double>(cfg.m));
  }
}

TEST(Placement, KGreaterThanMSpacing) {
  PlacementConfig cfg;
  cfg.num_nodes = 6;
  cfg.gpus_per_node = 2;  // W = 12, divisible by k = 4
  cfg.k = 4;
  cfg.m = 2;
  Placement p = plan_placement(cfg);
  // Groups without a parity worker spread targets at ⌊k/m⌋ = 2 intervals.
  for (const auto& op : p.reductions) {
    bool has_parity_worker = false;
    for (int w : op.participants)
      if (node_of(cfg, w) == op.dest_node) has_parity_worker = true;
    if (!has_parity_worker) {
      auto it = std::find(op.participants.begin(), op.participants.end(),
                          op.target_worker);
      int idx = static_cast<int>(it - op.participants.begin());
      EXPECT_EQ(idx, op.parity_row * 2);
    }
  }
}

TEST(Placement, KLessThanMRoundRobin) {
  PlacementConfig cfg;
  cfg.num_nodes = 6;
  cfg.gpus_per_node = 1;
  cfg.k = 2;
  cfg.m = 4;
  Placement p = plan_placement(cfg);
  for (const auto& op : p.reductions) {
    bool has_parity_worker = false;
    for (int w : op.participants)
      if (node_of(cfg, w) == op.dest_node) has_parity_worker = true;
    if (!has_parity_worker) {
      auto it = std::find(op.participants.begin(), op.participants.end(),
                          op.target_worker);
      EXPECT_EQ(static_cast<int>(it - op.participants.begin()),
                op.parity_row % cfg.k);
    }
  }
}

TEST(Placement, InvalidConfigsRejected) {
  PlacementConfig cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 1;
  cfg.k = 3;
  cfg.m = 2;  // k+m != n
  EXPECT_THROW(plan_placement(cfg), CheckFailure);
  cfg.m = 1;  // W=4 not divisible by k=3
  EXPECT_THROW(plan_placement(cfg), CheckFailure);
}

TEST(Placement, TransfersAreAllInterNode) {
  PlacementConfig cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 4;
  cfg.k = 2;
  cfg.m = 2;
  Placement p = plan_placement(cfg);
  for (const auto& t : p.transfers) EXPECT_NE(t.src_node, t.dst_node);
}

}  // namespace
}  // namespace eccheck::core
