// Failure-detector semantics: suspicion timing, quorum confirmation,
// latency bounds.
#include <gtest/gtest.h>

#include "cluster/failure_detector.hpp"

namespace eccheck::cluster {
namespace {

FailureDetectorConfig cfg(Seconds hb = 1.0, Seconds to = 3.0, int q = 1) {
  FailureDetectorConfig c;
  c.heartbeat_interval = hb;
  c.timeout = to;
  c.quorum = q;
  return c;
}

TEST(FailureDetector, SuspicionAfterLastBeatPlusTimeout) {
  FailureDetector d(cfg());
  // Failure at t=2.5: last beat at 2.0, suspicion at 5.0.
  EXPECT_DOUBLE_EQ(d.suspicion_time(2.5), 5.0);
  // Failure exactly on a beat: that beat was delivered.
  EXPECT_DOUBLE_EQ(d.suspicion_time(2.0), 5.0);
  EXPECT_DOUBLE_EQ(d.suspicion_time(0.0), 3.0);
}

TEST(FailureDetector, DetectionAlwaysAfterFailure) {
  FailureDetector d(cfg(0.5, 2.0, 2));
  for (double t : {0.0, 0.1, 0.49, 1.7, 10.01}) {
    Seconds det = d.detection_time(t, 3);
    EXPECT_GT(det, t);
    EXPECT_LE(det - t, d.max_latency() + 1e-9);
  }
}

TEST(FailureDetector, QuorumDelaysConfirmation) {
  FailureDetector d1(cfg(1.0, 3.0, 1));
  FailureDetector d3(cfg(1.0, 3.0, 3));
  for (double t : {0.3, 1.6, 2.2}) {
    EXPECT_LE(d1.detection_time(t, 3), d3.detection_time(t, 3)) << t;
  }
}

TEST(FailureDetector, StaggeredObserversDetectFasterThanOne) {
  // With many staggered observers, the earliest suspicion approaches
  // fail_time + timeout, beating a single unlucky observer's worst case.
  // Sampled past the first heartbeat interval: during startup every
  // observer's silence clock is pinned to process start, so staggering
  // only pays off once each observer has delivered its first beat.
  FailureDetector d(cfg(1.0, 3.0, 1));
  double worst_single = 0, with_eight = 0;
  for (double t = 1.05; t < 2.0; t += 0.1) {
    worst_single = std::max(worst_single, d.detection_time(t, 1) - t);
    with_eight = std::max(with_eight, d.detection_time(t, 8) - t);
  }
  EXPECT_LT(with_eight, worst_single);
}

TEST(FailureDetector, StartupFailureClampsSilenceClockToProcessStart) {
  // A node that dies at t=0 has delivered no beats; every observer's
  // silence clock starts at process start, so suspicion fires exactly at
  // `timeout` — never earlier (a negative last_beat would claim detection
  // before any observation was possible).
  FailureDetector d(cfg(1.0, 3.0, 1));
  EXPECT_DOUBLE_EQ(d.detection_time(0.0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.detection_time(0.0, 8), 3.0);
  // Death inside the first interval: observers whose first beat would land
  // after the failure still clamp to t=0; the earliest suspicion is either
  // `timeout` (clamped) or phase + timeout (one beat received) — both ≥
  // timeout, and detection stays within max_latency of the failure.
  for (double t : {0.1, 0.4, 0.9}) {
    for (int obs : {1, 3, 8}) {
      Seconds det = d.detection_time(t, obs);
      EXPECT_GE(det, d.config().timeout) << t << " obs=" << obs;
      EXPECT_GT(det, t);
      EXPECT_LE(det - t, d.max_latency() + 1e-9);
    }
  }
}

TEST(FailureDetector, RejectsBadConfigs) {
  auto bad = cfg();
  bad.timeout = 0.1;  // < heartbeat interval
  EXPECT_THROW(FailureDetector{bad}, CheckFailure);
  bad = cfg();
  bad.quorum = 0;
  EXPECT_THROW(FailureDetector{bad}, CheckFailure);
}

TEST(FailureDetector, ConfigTimeQuorumValidationAgainstClusterSize) {
  // A failed node in an N-node cluster has at most N-1 observers; a quorum
  // that large can never be met even with zero prior deaths — rejected at
  // construction, not mid-recovery.
  EXPECT_THROW(FailureDetector(cfg(1.0, 3.0, 4), /*cluster_nodes=*/4),
               CheckFailure);
  EXPECT_NO_THROW(FailureDetector(cfg(1.0, 3.0, 3), /*cluster_nodes=*/4));
  // Without a cluster size the check is skipped (legacy call sites).
  EXPECT_NO_THROW(FailureDetector(cfg(1.0, 3.0, 4)));
}

TEST(FailureDetector, DegradedQuorumFallsBackToSurvivorUnanimity) {
  // Concurrent failures left fewer alive observers than the configured
  // quorum: detection degrades to unanimity among the survivors instead of
  // aborting mid-recovery.
  FailureDetector d4(cfg(1.0, 3.0, 4));
  FailureDetector d2(cfg(1.0, 3.0, 2));
  EXPECT_TRUE(d4.degraded(2));
  EXPECT_FALSE(d4.degraded(4));
  EXPECT_EQ(d4.effective_quorum(2), 2);
  EXPECT_EQ(d4.effective_quorum(7), 4);
  for (double t : {0.0, 0.7, 1.3, 2.9}) {
    // Degraded d4 with 2 observers behaves exactly like a quorum-2 detector.
    EXPECT_DOUBLE_EQ(d4.detection_time(t, 2), d2.detection_time(t, 2)) << t;
    // And detection still lands within the usual bounds.
    Seconds det = d4.detection_time(t, 2);
    EXPECT_GT(det, t);
    EXPECT_LE(det - t, d4.max_latency() + 1e-9);
  }
  // Zero observers can never detect anything — still an error.
  EXPECT_THROW(d4.detection_time(1.0, 0), CheckFailure);
  EXPECT_THROW(d4.effective_quorum(0), CheckFailure);
}

}  // namespace
}  // namespace eccheck::cluster
