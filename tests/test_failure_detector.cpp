// Failure-detector semantics: suspicion timing, quorum confirmation,
// latency bounds.
#include <gtest/gtest.h>

#include "cluster/failure_detector.hpp"

namespace eccheck::cluster {
namespace {

FailureDetectorConfig cfg(Seconds hb = 1.0, Seconds to = 3.0, int q = 1) {
  FailureDetectorConfig c;
  c.heartbeat_interval = hb;
  c.timeout = to;
  c.quorum = q;
  return c;
}

TEST(FailureDetector, SuspicionAfterLastBeatPlusTimeout) {
  FailureDetector d(cfg());
  // Failure at t=2.5: last beat at 2.0, suspicion at 5.0.
  EXPECT_DOUBLE_EQ(d.suspicion_time(2.5), 5.0);
  // Failure exactly on a beat: that beat was delivered.
  EXPECT_DOUBLE_EQ(d.suspicion_time(2.0), 5.0);
  EXPECT_DOUBLE_EQ(d.suspicion_time(0.0), 3.0);
}

TEST(FailureDetector, DetectionAlwaysAfterFailure) {
  FailureDetector d(cfg(0.5, 2.0, 2));
  for (double t : {0.0, 0.1, 0.49, 1.7, 10.01}) {
    Seconds det = d.detection_time(t, 3);
    EXPECT_GT(det, t);
    EXPECT_LE(det - t, d.max_latency() + 1e-9);
  }
}

TEST(FailureDetector, QuorumDelaysConfirmation) {
  FailureDetector d1(cfg(1.0, 3.0, 1));
  FailureDetector d3(cfg(1.0, 3.0, 3));
  for (double t : {0.3, 1.6, 2.2}) {
    EXPECT_LE(d1.detection_time(t, 3), d3.detection_time(t, 3)) << t;
  }
}

TEST(FailureDetector, StaggeredObserversDetectFasterThanOne) {
  // With many staggered observers, the earliest suspicion approaches
  // fail_time + timeout, beating a single unlucky observer's worst case.
  // Sampled past the first heartbeat interval: during startup every
  // observer's silence clock is pinned to process start, so staggering
  // only pays off once each observer has delivered its first beat.
  FailureDetector d(cfg(1.0, 3.0, 1));
  double worst_single = 0, with_eight = 0;
  for (double t = 1.05; t < 2.0; t += 0.1) {
    worst_single = std::max(worst_single, d.detection_time(t, 1) - t);
    with_eight = std::max(with_eight, d.detection_time(t, 8) - t);
  }
  EXPECT_LT(with_eight, worst_single);
}

TEST(FailureDetector, StartupFailureClampsSilenceClockToProcessStart) {
  // A node that dies at t=0 has delivered no beats; every observer's
  // silence clock starts at process start, so suspicion fires exactly at
  // `timeout` — never earlier (a negative last_beat would claim detection
  // before any observation was possible).
  FailureDetector d(cfg(1.0, 3.0, 1));
  EXPECT_DOUBLE_EQ(d.detection_time(0.0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.detection_time(0.0, 8), 3.0);
  // Death inside the first interval: observers whose first beat would land
  // after the failure still clamp to t=0; the earliest suspicion is either
  // `timeout` (clamped) or phase + timeout (one beat received) — both ≥
  // timeout, and detection stays within max_latency of the failure.
  for (double t : {0.1, 0.4, 0.9}) {
    for (int obs : {1, 3, 8}) {
      Seconds det = d.detection_time(t, obs);
      EXPECT_GE(det, d.config().timeout) << t << " obs=" << obs;
      EXPECT_GT(det, t);
      EXPECT_LE(det - t, d.max_latency() + 1e-9);
    }
  }
}

TEST(FailureDetector, RejectsBadConfigs) {
  auto bad = cfg();
  bad.timeout = 0.1;  // < heartbeat interval
  EXPECT_THROW(FailureDetector{bad}, CheckFailure);
  FailureDetector d(cfg(1.0, 3.0, 4));
  EXPECT_THROW(d.detection_time(1.0, 3), CheckFailure);  // quorum > observers
}

}  // namespace
}  // namespace eccheck::cluster
