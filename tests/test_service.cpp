// The checkpoint service (src/svc): control-protocol framing, the
// coordinator's admission/fan-out behaviour, and the daemon lifecycle —
// multi-job sessions, a worker death that tears a save, replacement, and
// bit-exact recovery of every job. Daemons run as threads here (one OS
// process per daemon lives in examples/transport_cli --mode daemon); the
// socket fabric between them is exactly the multi-process one.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dnn/checkpoint_gen.hpp"
#include "obs/json.hpp"
#include "svc/checkpoint_service.hpp"

namespace eccheck {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/eccheck-svctest-XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

constexpr int kK = 2;
constexpr int kM = 2;
constexpr int kNodes = kK + kM;
constexpr int kGpn = 2;
constexpr int kWorld = kNodes * kGpn;

net::TransportOptions fast_opts(const TempDir& dir) {
  net::TransportOptions o;
  o.connect_timeout = net::Millis(500);
  o.connect_retries = 20;
  o.backoff_base = net::Millis(2);
  o.backoff_max = net::Millis(50);
  o.io_timeout = net::Millis(5000);
  o.remote_dir = dir.path + "/remote";
  return o;
}

core::ECCheckConfig ec_config() {
  core::ECCheckConfig cfg;
  cfg.k = kK;
  cfg.m = kM;
  cfg.packet_size = 16 * 1024;
  return cfg;
}

svc::WorkerDaemonConfig worker_config(const TempDir& dir, int rank) {
  svc::WorkerDaemonConfig cfg;
  cfg.rank = rank;
  for (int r = 0; r < kNodes; ++r)
    cfg.fabric_eps.push_back(net::Endpoint::uds(
        dir.path + "/rank" + std::to_string(r) + ".sock"));
  cfg.control_ep =
      net::Endpoint::uds(dir.path + "/ctl" + std::to_string(rank) + ".sock");
  cfg.fabric_opts = fast_opts(dir);
  cfg.ec = ec_config();
  cfg.gpus_per_node = kGpn;
  return cfg;
}

/// A daemon on its own thread; join() after the daemon got `exit`.
struct DaemonThread {
  std::unique_ptr<svc::WorkerDaemon> daemon;
  std::thread thread;

  explicit DaemonThread(svc::WorkerDaemonConfig cfg)
      : daemon(std::make_unique<svc::WorkerDaemon>(std::move(cfg))) {
    thread = std::thread([this] { daemon->run(); });
  }
  ~DaemonThread() {
    if (thread.joinable()) thread.join();
  }
};

/// Expected digests for (job, iteration): the bit-exactness oracle.
std::map<int, std::uint64_t> want_digests(const std::string& job,
                                          std::int64_t iteration) {
  const dnn::CheckpointGenConfig gen =
      svc::job_gen_config(job, iteration, kWorld);
  std::map<int, std::uint64_t> out;
  for (int w = 0; w < kWorld; ++w)
    out[w] = dnn::make_worker_state_dict(gen, w).digest();
  return out;
}

struct ParsedBody {
  std::int64_t version = 0;
  std::int64_t iteration = 0;
  std::map<int, std::uint64_t> digests;
  std::string detail;
};

ParsedBody parse_body(const std::string& body) {
  ParsedBody p;
  std::istringstream is(body);
  std::string tok;
  while (is >> tok) {
    if (tok == ";") {
      std::getline(is, p.detail);
      if (!p.detail.empty() && p.detail[0] == ' ') p.detail.erase(0, 1);
      break;
    }
    if (tok.rfind("version=", 0) == 0) {
      p.version = std::stoll(tok.substr(8));
    } else if (tok.rfind("iteration=", 0) == 0) {
      p.iteration = std::stoll(tok.substr(10));
    } else if (tok[0] == 'w' && tok.find(':') != std::string::npos) {
      const auto colon = tok.find(':');
      p.digests[std::stoi(tok.substr(1, colon - 1))] =
          std::stoull(tok.substr(colon + 1), nullptr, 16);
    }
  }
  return p;
}

// ---------------------------------------------------------------------------

TEST(ServiceProtocol, ClientRequestRoundTripsAndRejectsUnknownCommands) {
  TempDir dir;
  std::vector<std::unique_ptr<DaemonThread>> daemons;
  for (int r = 0; r < kNodes; ++r)
    daemons.push_back(std::make_unique<DaemonThread>(worker_config(dir, r)));
  const net::Endpoint ctl0 = net::Endpoint::uds(dir.path + "/ctl0.sock");
  const net::TransportOptions opts = fast_opts(dir);

  const svc::ControlReply pong = svc::client_request(ctl0, "ping", "", opts);
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.body, "pong rank=0");

  const svc::ControlReply bad =
      svc::client_request(ctl0, "frobnicate", "", opts);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.body.find("unknown command"), std::string::npos);

  const svc::ControlReply malformed =
      svc::client_request(ctl0, "save", "onlyjob", opts);
  EXPECT_FALSE(malformed.ok);

  for (int r = 0; r < kNodes; ++r)
    svc::client_request(net::Endpoint::uds(dir.path + "/ctl" +
                                           std::to_string(r) + ".sock"),
                        "exit", "", opts);
}

// Control frames come off the open network: a garbage or overflowing
// integer argument must produce a typed kStatusBadRequest reply — never an
// uncaught std::invalid_argument/std::out_of_range that kills the daemon.
// Each refusal is followed by a ping proving the worker still serves.
TEST(ServiceProtocol, MalformedWireIntegersGetTypedRefusalsNotCrashes) {
  TempDir dir;
  std::vector<std::unique_ptr<DaemonThread>> daemons;
  for (int r = 0; r < kNodes; ++r)
    daemons.push_back(std::make_unique<DaemonThread>(worker_config(dir, r)));
  const net::Endpoint ctl0 = net::Endpoint::uds(dir.path + "/ctl0.sock");
  const net::TransportOptions opts = fast_opts(dir);
  auto expect_bad = [&](const std::string& cmd, const std::string& args,
                        const std::string& needle) {
    const svc::ControlReply r = svc::client_request(ctl0, cmd, args, opts);
    EXPECT_FALSE(r.ok) << cmd << " " << args;
    EXPECT_EQ(r.status, svc::kStatusBadRequest) << cmd << " " << args << " → "
                                                << r.body;
    EXPECT_NE(r.body.find(needle), std::string::npos)
        << cmd << " " << args << " → " << r.body;
    const svc::ControlReply pong = svc::client_request(ctl0, "ping", "", opts);
    EXPECT_TRUE(pong.ok) << "daemon died after: " << cmd << " " << args;
  };

  expect_bad("save", "jobX abc", "save iteration");
  // 2^80 overflows int64 — range refusal, not std::out_of_range.
  expect_bad("save", "jobX 1208925819614629174706176", "save iteration");
  expect_bad("save", "jobX 0", "save iteration");     // below minimum
  expect_bad("save", "jobX 12garbage", "save iteration");  // trailing junk
  expect_bad("save", "jobX 1 epoch=banana", "epoch");
  expect_bad("save", "jobX 1 epoch=1 alive=1,x,3", "alive rank");
  expect_bad("load", "jobX alive=0,zz,2", "alive rank");
  expect_bad("inject", "drop nan", "drop probability");
  expect_bad("inject", "delay 0.5 -7", "delay ms");
  expect_bad("inject", "delay 0.5 1e99", "delay ms");

  for (int r = 0; r < kNodes; ++r)
    svc::client_request(net::Endpoint::uds(dir.path + "/ctl" +
                                           std::to_string(r) + ".sock"),
                        "exit", "", opts);
}

// Same contract for the coordinator's liveness listener: beats with a
// garbage rank, a 2^80 epoch, or an empty token get kStatusBadRequest and
// the liveness thread keeps serving (a well-formed beat still lands).
TEST(ServiceProtocol, LivenessBeatsValidateRankAndEpoch) {
  TempDir dir;
  std::vector<std::unique_ptr<DaemonThread>> daemons;
  for (int r = 0; r < kNodes; ++r)
    daemons.push_back(std::make_unique<DaemonThread>(worker_config(dir, r)));
  svc::CoordinatorConfig ccfg;
  ccfg.client_ep = net::Endpoint::uds(dir.path + "/client.sock");
  for (int r = 0; r < kNodes; ++r)
    ccfg.worker_eps.push_back(net::Endpoint::uds(
        dir.path + "/ctl" + std::to_string(r) + ".sock"));
  ccfg.liveness_ep = net::Endpoint::uds(dir.path + "/live.sock");
  ccfg.parity_m = kM;
  ccfg.data_k = kK;
  ccfg.opts = fast_opts(dir);
  svc::Coordinator coordinator(ccfg);
  std::thread coord_thread([&coordinator] { coordinator.run(); });

  const net::TransportOptions opts = ccfg.opts;
  auto beat = [&](const std::string& args) {
    return svc::client_request(*ccfg.liveness_ep, "beat", args, opts);
  };

  for (const std::string& args :
       {std::string("x epoch=1"),                             // garbage rank
        std::string("0 epoch=1208925819614629174706176"),     // 2^80
        std::string("0 epoch="),                              // empty token
        std::string("99 epoch=1"),                            // out of world
        std::string("-3 epoch=1"), std::string("1z epoch=1")}) {
    const svc::ControlReply r = beat(args);
    EXPECT_FALSE(r.ok) << args;
    EXPECT_EQ(r.status, svc::kStatusBadRequest) << args << " → " << r.body;
  }

  // The thread survived every refusal: a legitimate beat still lands.
  const svc::ControlReply good = beat("0 epoch=0");
  EXPECT_TRUE(good.ok) << good.body;
  EXPECT_NE(good.body.find("ok epoch="), std::string::npos) << good.body;

  const svc::ControlReply bye =
      svc::client_request(ccfg.client_ep, "shutdown", "", opts);
  EXPECT_TRUE(bye.ok) << bye.body;
  coord_thread.join();
}

TEST(ServiceDaemon, MultiJobSaveLoadKillRecoverBitExact) {
  TempDir dir;
  std::vector<std::unique_ptr<DaemonThread>> daemons;
  for (int r = 0; r < kNodes; ++r)
    daemons.push_back(std::make_unique<DaemonThread>(worker_config(dir, r)));

  svc::CoordinatorConfig ccfg;
  ccfg.client_ep = net::Endpoint::uds(dir.path + "/client.sock");
  for (int r = 0; r < kNodes; ++r)
    ccfg.worker_eps.push_back(net::Endpoint::uds(
        dir.path + "/ctl" + std::to_string(r) + ".sock"));
  ccfg.opts = fast_opts(dir);
  ccfg.opts.io_timeout = net::Millis(60000);
  ccfg.opts.connect_retries = 3;
  svc::Coordinator coordinator(ccfg);
  std::thread coord_thread([&coordinator] { coordinator.run(); });

  const net::TransportOptions copts = ccfg.opts;
  auto request = [&](const std::string& cmd, const std::string& args) {
    return svc::client_request(ccfg.client_ep, cmd, args, copts);
  };

  // Two jobs interleaved: versions advance independently per namespace.
  svc::ControlReply r = request("save", "jobA");
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(parse_body(r.body).version, 1);
  EXPECT_EQ(parse_body(r.body).digests, want_digests("jobA", 1));

  r = request("save", "jobB");
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(parse_body(r.body).version, 1);

  r = request("save", "jobA");
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(parse_body(r.body).version, 2);
  EXPECT_EQ(parse_body(r.body).digests, want_digests("jobA", 2));

  // Orderly worker death (daemon exits, fabric listener closes): the next
  // save's collective tears; survivors roll it back and report the error.
  // Node 2 holds a data row in this placement, so recovery must decode
  // (workflow B) rather than just re-encode parity.
  const int victim = 2;
  svc::client_request(ccfg.worker_eps[victim], "exit", "", copts);
  daemons[victim].reset();  // joins the dead daemon's thread

  r = request("save", "jobA");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.body.find("save failed"), std::string::npos) << r.body;

  r = request("status", "");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.body.find("workers=3/4"), std::string::npos) << r.body;

  // The health endpoint in the torn-save aftermath: the dead worker shows
  // up as not alive, the failed save is counted against jobA with its
  // error preserved, and the last *committed* version is still 2 — the
  // torn version must not leak into health.
  r = request("health", "jobA");
  ASSERT_TRUE(r.ok) << r.body;
  {
    std::string perr;
    const std::unique_ptr<obs::JsonValue> doc =
        obs::JsonValue::parse(r.body, &perr);
    ASSERT_NE(doc, nullptr) << perr << ": " << r.body;
    const obs::JsonValue* workers = doc->find("workers");
    ASSERT_TRUE(workers != nullptr && workers->is_array()) << r.body;
    int alive = 0;
    for (const obs::JsonValue& w : workers->as_array()) {
      const obs::JsonValue* a = w.find("alive");
      ASSERT_NE(a, nullptr);
      if (a->as_bool()) ++alive;
    }
    EXPECT_EQ(alive, kNodes - 1) << r.body;
    const obs::JsonValue* jobs = doc->find("jobs");
    const obs::JsonValue* jobA = jobs != nullptr ? jobs->find("jobA") : nullptr;
    ASSERT_NE(jobA, nullptr) << r.body;
    EXPECT_EQ(jobA->find("last_version")->as_number(), 2);
    EXPECT_EQ(jobA->find("saves_ok")->as_number(), 2);
    EXPECT_EQ(jobA->find("saves_failed")->as_number(), 1);
    EXPECT_FALSE(jobA->find("last_error")->as_string().empty());
    EXPECT_EQ(jobs->find("jobB"), nullptr)
        << "the job filter must hide other jobs";
  }

  // Replacement on the same endpoints; both jobs recover bit-exactly.
  daemons[victim] = std::make_unique<DaemonThread>(worker_config(dir, victim));

  r = request("load", "jobA");
  ASSERT_TRUE(r.ok) << r.body;
  {
    const ParsedBody p = parse_body(r.body);
    EXPECT_EQ(p.version, 2);
    EXPECT_EQ(p.iteration, 2);
    EXPECT_EQ(p.digests, want_digests("jobA", 2));
    EXPECT_NE(p.detail.find("workflow B"), std::string::npos)
        << "replacement rank lost its chunks, expected a decode: "
        << p.detail;
  }

  r = request("load", "jobB");
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(parse_body(r.body).version, 1);
  EXPECT_EQ(parse_body(r.body).digests, want_digests("jobB", 1));

  // Training resumes: the next save agrees on version 3 (the torn version
  // was rolled back everywhere) with a fresh iteration number.
  r = request("save", "jobA");
  ASSERT_TRUE(r.ok) << r.body;
  {
    const ParsedBody p = parse_body(r.body);
    EXPECT_EQ(p.version, 3);
    EXPECT_EQ(p.iteration, 4);
    EXPECT_EQ(p.digests, want_digests("jobA", 4));
  }

  r = request("status", "");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.body.find("workers=4/4"), std::string::npos) << r.body;

  // Health after recovery: everyone alive again, latency histograms have
  // one sample per completed operation.
  r = request("health", "");
  ASSERT_TRUE(r.ok) << r.body;
  {
    std::string perr;
    const std::unique_ptr<obs::JsonValue> doc =
        obs::JsonValue::parse(r.body, &perr);
    ASSERT_NE(doc, nullptr) << perr;
    int alive = 0;
    for (const obs::JsonValue& w : doc->find("workers")->as_array())
      if (w.find("alive")->as_bool()) ++alive;
    EXPECT_EQ(alive, kNodes);
    const obs::JsonValue* jobA = doc->find("jobs")->find("jobA");
    ASSERT_NE(jobA, nullptr);
    EXPECT_EQ(jobA->find("last_version")->as_number(), 3);
    EXPECT_EQ(jobA->find("saves_ok")->as_number(), 3);
    EXPECT_EQ(jobA->find("loads_ok")->as_number(), 1);
    EXPECT_EQ(jobA->find("save_latency_s")->find("count")->as_number(), 3);
    EXPECT_EQ(jobA->find("load_latency_s")->find("count")->as_number(), 1);
    ASSERT_NE(doc->find("jobs")->find("jobB"), nullptr)
        << "unfiltered health must list every job";
    EXPECT_GE(doc->find("queue_depth")->as_number(), 0);
  }

  // Aggregated fleet stats: per-worker sections plus a merged view that
  // actually sums the workers' fabric counters.
  r = request("stats", "");
  ASSERT_TRUE(r.ok) << r.body;
  {
    std::string perr;
    const std::unique_ptr<obs::JsonValue> doc =
        obs::JsonValue::parse(r.body, &perr);
    ASSERT_NE(doc, nullptr) << perr;
    const obs::JsonValue* workers = doc->find("workers");
    ASSERT_TRUE(workers != nullptr && workers->is_object());
    EXPECT_EQ(workers->as_object().size(), static_cast<std::size_t>(kNodes));
    const obs::JsonValue* agg = doc->find("aggregate");
    ASSERT_NE(agg, nullptr);
    double sum = 0;
    for (const auto& [name, snap] : workers->as_object()) {
      (void)name;
      const obs::JsonValue* c = snap.find("counters");
      const obs::JsonValue* v =
          c != nullptr ? c->find("net.send.count") : nullptr;
      if (v != nullptr) sum += v->as_number();
    }
    EXPECT_GT(sum, 0);
    EXPECT_EQ(agg->find("counters")->find("net.send.count")->as_number(), sum);
  }

  r = request("shutdown", "");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.body, "bye");
  coord_thread.join();
}

}  // namespace
}  // namespace eccheck
