// Session facade tests: the paper's initialize/save/load API, version
// retention, idle-slot calendars, and fallback to older versions.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "dnn/checkpoint_gen.hpp"

namespace eccheck {
namespace {

using cluster::ClusterConfig;
using cluster::VirtualCluster;

struct Fixture {
  VirtualCluster cluster;
  dnn::ModelSpec model;
  dnn::ParallelismSpec par;

  Fixture()
      : cluster([] {
          ClusterConfig cfg;
          cfg.num_nodes = 4;
          cfg.gpus_per_node = 2;
          return cfg;
        }()),
        model(dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1, 4, "sess")),
        par{2, 4, 1} {
    model.vocab = 256;
  }

  std::vector<dnn::StateDict> shards(std::int64_t iteration) {
    dnn::CheckpointGenConfig gen;
    gen.model = model;
    gen.parallelism = par;
    gen.seed = 77;
    gen.iteration = iteration;
    return dnn::make_sharded_checkpoint(gen);
  }

  core::SessionConfig session_config() {
    core::SessionConfig cfg;
    cfg.ec.k = 2;
    cfg.ec.m = 2;
    cfg.ec.packet_size = kib(8);
    return cfg;
  }
};

TEST(Session, InitializeProfilesAndPlans) {
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  EXPECT_EQ(s.placement().data_nodes.size(), 2u);
  EXPECT_GT(s.train_profile().iteration_time, 0.0);
  EXPECT_EQ(s.latest_version(), 0);
}

TEST(Session, SaveLoadLatestVersion) {
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  auto v1 = f.shards(100);
  auto v2 = f.shards(200);
  s.save(v1);
  s.save(v2);
  EXPECT_EQ(s.latest_version(), 2);

  f.cluster.kill(0);
  f.cluster.replace(0);
  std::vector<dnn::StateDict> out;
  auto r = s.load(out);
  ASSERT_TRUE(r.report.success) << r.report.detail;
  EXPECT_EQ(r.version, 2);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].digest(), v2[i].digest());
}

TEST(Session, RetentionPrunesOldVersions) {
  Fixture f;
  auto cfg = f.session_config();
  cfg.retain_versions = 2;
  auto s = core::Session::initialize(f.cluster, f.model, f.par, cfg);
  s.save(f.shards(1));
  s.save(f.shards(2));
  s.save(f.shards(3));

  // Version 1 must be gone from every node's host memory.
  for (int n = 0; n < f.cluster.num_nodes(); ++n)
    EXPECT_TRUE(f.cluster.host(n).keys_with_prefix("ec/1/").empty())
        << "node " << n;
  // Versions 2 and 3 are still present.
  EXPECT_FALSE(f.cluster.host(0).keys_with_prefix("ec/3/").empty());
  EXPECT_FALSE(f.cluster.host(0).keys_with_prefix("ec/2/").empty());

  std::vector<dnn::StateDict> out;
  EXPECT_FALSE(s.engine().load(f.cluster, 1, out).success);
  EXPECT_TRUE(s.engine().load(f.cluster, 2, out).success);
}

TEST(Session, LoadFallsBackToOlderRetainedVersion) {
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  auto v1 = f.shards(1);
  s.save(v1);
  s.save(f.shards(2));

  // Corrupt version 2 everywhere (simulates a save torn by failure): only
  // version 1 remains loadable.
  for (int n = 0; n < f.cluster.num_nodes(); ++n)
    for (const auto& key : f.cluster.host(n).keys_with_prefix("ec/2/"))
      f.cluster.host(n).erase(key);

  std::vector<dnn::StateDict> out;
  auto r = s.load(out);
  ASSERT_TRUE(r.report.success) << r.report.detail;
  EXPECT_EQ(r.version, 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].digest(), v1[i].digest());
}

TEST(Session, ReportsFailureWhenNothingLoadable) {
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  s.save(f.shards(1));
  for (int n : {0, 1, 2}) {  // > m failures, no remote flush
    f.cluster.kill(n);
    f.cluster.replace(n);
  }
  std::vector<dnn::StateDict> out;
  auto r = s.load(out);
  EXPECT_FALSE(r.report.success);
  EXPECT_EQ(r.version, 0);
  // The detail names the version range that was tried, not just the last
  // engine error.
  EXPECT_NE(r.report.detail.find("no retained version"), std::string::npos)
      << r.report.detail;
}

TEST(Session, LoadBeforeAnySaveReportsEmptyHistory) {
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  std::vector<dnn::StateDict> out;
  auto r = s.load(out);
  EXPECT_FALSE(r.report.success);
  EXPECT_EQ(r.version, 0);
  // Must say "nothing saved yet", not leave detail empty or probe version 0.
  EXPECT_NE(r.report.detail.find("no checkpoint has been saved"),
            std::string::npos)
      << r.report.detail;
}

TEST(Session, RetentionPrunesRemoteFlushedCopies) {
  // With step-4 remote flush on, retired versions must also be erased from
  // the remote store — otherwise it accumulates every version forever.
  Fixture f;
  auto cfg = f.session_config();
  cfg.retain_versions = 2;
  cfg.ec.flush_to_remote = true;
  auto s = core::Session::initialize(f.cluster, f.model, f.par, cfg);
  s.save(f.shards(1));
  ASSERT_FALSE(f.cluster.remote().keys_with_prefix("ec/1/").empty());
  s.save(f.shards(2));
  s.save(f.shards(3));

  EXPECT_TRUE(f.cluster.remote().keys_with_prefix("ec/1/").empty());
  EXPECT_FALSE(f.cluster.remote().keys_with_prefix("ec/2/").empty());
  EXPECT_FALSE(f.cluster.remote().keys_with_prefix("ec/3/").empty());

  // The surviving remote copy still rescues a catastrophic failure.
  for (int n : {0, 1, 2}) {
    f.cluster.kill(n);
    f.cluster.replace(n);
  }
  std::vector<dnn::StateDict> out;
  auto r = s.load(out);
  ASSERT_TRUE(r.report.success) << r.report.detail;
  EXPECT_EQ(r.version, 3);
}

TEST(Session, IdleCalendarsInstalledOnNics) {
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  (void)s;
  // A non-idle send overlapping the training windows reports interference.
  f.cluster.net_send(0, 1, static_cast<std::size_t>(1e9), {}, false);
  Seconds total = 0;
  for (int n = 0; n < f.cluster.num_nodes(); ++n)
    total += f.cluster.nic_interference(n);
  EXPECT_GT(total, 0.0);
}

TEST(Session, SaveAfterRecoveryContinuesVersioning) {
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  s.save(f.shards(1));
  f.cluster.kill(3);
  f.cluster.replace(3);
  std::vector<dnn::StateDict> out;
  ASSERT_TRUE(s.load(out).report.success);
  auto rep = s.save(out);  // checkpoint the recovered state
  EXPECT_GT(rep.total_time, 0.0);
  EXPECT_EQ(s.latest_version(), 2);
  auto r2 = s.load(out);
  EXPECT_TRUE(r2.report.success);
  EXPECT_EQ(r2.version, 2);
}


TEST(Session, TornSaveNeverBecomesVisible) {
  // A save interrupted before its commit marker lands must be invisible:
  // emulate by erasing the commit markers of the newest version — load
  // falls back to the previous fully-committed checkpoint.
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  auto v1 = f.shards(1);
  s.save(v1);
  s.save(f.shards(2));
  for (int n = 0; n < f.cluster.num_nodes(); ++n)
    f.cluster.host(n).erase("ec/2/commit");

  std::vector<dnn::StateDict> out;
  auto r = s.load(out);
  ASSERT_TRUE(r.report.success) << r.report.detail;
  EXPECT_EQ(r.version, 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].digest(), v1[i].digest());
}

TEST(Session, PartiallyTornSaveStillRecoversViaDecode) {
  // Commit lost on one node only: that node's chunk is treated as missing
  // and the version is decoded from the other k survivors.
  Fixture f;
  auto s = core::Session::initialize(f.cluster, f.model, f.par,
                                     f.session_config());
  auto v1 = f.shards(1);
  s.save(v1);
  f.cluster.host(3).erase("ec/1/commit");

  std::vector<dnn::StateDict> out;
  auto r = s.load(out);
  ASSERT_TRUE(r.report.success) << r.report.detail;
  EXPECT_EQ(r.version, 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].digest(), v1[i].digest());
}

}  // namespace
}  // namespace eccheck
