// Collective primitives: data correctness and timing structure.
#include <gtest/gtest.h>

#include "chaos/fault_plan.hpp"
#include "cluster/collectives.hpp"
#include "common/rng.hpp"

namespace eccheck::cluster {
namespace {

ClusterConfig cfg() {
  ClusterConfig c;
  c.num_nodes = 4;
  c.gpus_per_node = 1;
  c.nic_bandwidth = 100.0;  // 100 B/s for round numbers
  c.xor_bandwidth = 1e12;   // negligible compute
  return c;
}

Buffer rand_buf(std::size_t n, std::uint64_t seed) {
  Buffer b(n, Buffer::Init::kUninitialized);
  fill_random(b.span(), seed);
  return b;
}

TEST(Collectives, BroadcastDeliversToAll) {
  VirtualCluster c(cfg());
  Buffer payload = rand_buf(200, 1);
  c.host(2).put("blob", payload.clone());
  auto finish = broadcast(c, {0, 1, 2, 3}, 2, "blob");
  for (int n : {0, 1, 3}) EXPECT_EQ(c.host(n).get("blob"), payload);
  // Root's own slot has no task; others do.
  EXPECT_EQ(finish[2], -1);
  EXPECT_GE(finish[0], 0);
  // Root TX serialises the three sends: 3 x 2s.
  Seconds last = 0;
  for (TaskId t : finish)
    if (t >= 0) last = std::max(last, c.timeline().finish_time(t));
  EXPECT_DOUBLE_EQ(last, 6.0);
}

TEST(Collectives, AllGatherEveryoneHasEverything) {
  VirtualCluster c(cfg());
  std::vector<Buffer> blobs;
  for (int n = 0; n < 4; ++n) {
    blobs.push_back(rand_buf(100, 10 + static_cast<std::uint64_t>(n)));
    c.host(n).put("shard/" + std::to_string(n), blobs.back().clone());
  }
  auto key_of = [](int n) { return "shard/" + std::to_string(n); };
  auto finish = all_gather(c, {0, 1, 2, 3}, key_of);
  for (int n = 0; n < 4; ++n)
    for (int o = 0; o < 4; ++o)
      EXPECT_EQ(c.host(n).get(key_of(o)), blobs[static_cast<std::size_t>(o)])
          << n << " " << o;
  // Ring: p-1 = 3 sequential steps of 1s each on every link.
  Seconds last = 0;
  for (TaskId t : finish)
    if (t >= 0) last = std::max(last, c.timeline().finish_time(t));
  EXPECT_DOUBLE_EQ(last, 3.0);
}

TEST(Collectives, RingAllReduceXorValue) {
  VirtualCluster c(cfg());
  Buffer expect(400, Buffer::Init::kZeroed);
  for (int n = 0; n < 4; ++n) {
    Buffer b = rand_buf(400, 20 + static_cast<std::uint64_t>(n));
    xor_into(expect.span(), b.span());
    c.host(n).put("grad", std::move(b));
  }
  ring_all_reduce_xor(c, {0, 1, 2, 3}, "grad");
  for (int n = 0; n < 4; ++n) EXPECT_EQ(c.host(n).get("grad"), expect);
}

TEST(Collectives, RingAllReduceMovesTwiceMinusTwoSegments) {
  VirtualCluster c(cfg());
  for (int n = 0; n < 4; ++n) c.host(n).put("grad", rand_buf(400, 30));
  auto finish = ring_all_reduce_xor(c, {0, 1, 2, 3}, "grad");
  // 2(p-1) = 6 steps of seg = 100 bytes = 1s each, pipelined per link but
  // serialised along the ring dependency chain.
  Seconds last = 0;
  for (TaskId t : finish) last = std::max(last, c.timeline().finish_time(t));
  EXPECT_NEAR(last, 6.0, 1e-6);  // + negligible XOR compute per hop
}

TEST(Collectives, SingleNodeDegenerates) {
  VirtualCluster c(cfg());
  Buffer b = rand_buf(64, 5);
  c.host(0).put("x", b.clone());
  EXPECT_NO_THROW(broadcast(c, {0}, 0, "x"));
  EXPECT_NO_THROW(ring_all_reduce_xor(c, {0}, "x"));
  EXPECT_EQ(c.host(0).get("x"), b);
}

TEST(Collectives, RingSegmentsPartitionExactly) {
  for (std::size_t total : {0ul, 1ul, 7ul, 397ul, 400ul}) {
    for (int p : {1, 2, 3, 4, 7}) {
      std::size_t covered = 0;
      for (int s = 0; s < p; ++s) {
        RingSegment seg = ring_segment(total, p, s);
        EXPECT_EQ(seg.offset, covered);
        covered += seg.size;
      }
      EXPECT_EQ(covered, total) << total << " over " << p;
    }
  }
  // Every step of either phase transmits each segment index exactly once
  // across the ring (so the per-step aggregate volume is `total`).
  for (int p : {2, 3, 4, 5}) {
    for (int phase = 0; phase < 2; ++phase) {
      for (int t = 0; t < p - 1; ++t) {
        std::vector<bool> seen(static_cast<std::size_t>(p), false);
        for (int pos = 0; pos < p; ++pos) {
          int s = ring_send_segment(p, phase, t, pos);
          EXPECT_FALSE(seen[static_cast<std::size_t>(s)]);
          seen[static_cast<std::size_t>(s)] = true;
        }
      }
    }
  }
}

TEST(Collectives, RingAllReduceOddSizeValueAndClosedFormVolume) {
  VirtualCluster c(cfg());
  const std::size_t total = 397;  // prime: p never divides it
  Buffer expect(total, Buffer::Init::kZeroed);
  for (int n = 0; n < 4; ++n) {
    Buffer b = rand_buf(total, 40 + static_cast<std::uint64_t>(n));
    xor_into(expect.span(), b.span());
    c.host(n).put("grad", std::move(b));
  }
  const auto before = c.stats().counters();
  ring_all_reduce_xor(c, {0, 1, 2, 3}, "grad");
  for (int n = 0; n < 4; ++n) EXPECT_EQ(c.host(n).get("grad"), expect);
  const auto d = obs::StatsRegistry::delta(c.stats().counters(), before);
  // True per-step segments: aggregate ring volume is exactly 2(p-1)·total
  // (= p · the closed-form 2(p-1)/p·total per node), not 2(p-1)·p·⌈total/p⌉.
  const int p = 4;
  EXPECT_EQ(d.at("net.collective.bytes"),
            2u * static_cast<std::uint64_t>(p - 1) * total);
  // One XOR per reduce-scatter receive, each of the received segment's size.
  EXPECT_EQ(d.at("cpu.xor.bytes"),
            static_cast<std::uint64_t>(p - 1) * total);
}

TEST(Collectives, BroadcastRootKilledMidFanoutAborts) {
  VirtualCluster c(cfg());
  Buffer payload = rand_buf(128, 9);
  c.host(0).put("blob", payload.clone());
  chaos::FaultPlan plan;
  c.set_fault_hook(&plan);
  // Fabric op 0 is the send to node 1; kill the root at op 1 (the send to
  // node 2), i.e. between fan-out sends.
  plan.arm({{1, 0}});
  EXPECT_THROW(broadcast(c, {0, 1, 2, 3}, 0, "blob"), CheckFailure);
  ASSERT_EQ(plan.fired().size(), 1u);
  EXPECT_FALSE(c.alive(0));
  // The first destination's bytes landed before the fault; nothing after
  // the kill arrived anywhere.
  EXPECT_EQ(c.host(1).get("blob"), payload);
  EXPECT_FALSE(c.host(2).contains("blob"));
  EXPECT_FALSE(c.host(3).contains("blob"));
  c.set_fault_hook(nullptr);
}

TEST(Collectives, NoTaskSentinelIsRejectedAsDependency) {
  VirtualCluster c(cfg());
  c.host(1).put("blob", rand_buf(64, 11));
  auto finish = broadcast(c, {0, 1, 2, 3}, 1, "blob");
  ASSERT_EQ(finish[1], kNoTask);
  // Splicing the raw vector (sentinel included) into a dep list fails fast…
  EXPECT_THROW(c.barrier(finish), CheckFailure);
  // …and valid_tasks() is the documented filter.
  auto deps = valid_tasks(finish);
  EXPECT_EQ(deps.size(), 3u);
  EXPECT_NO_THROW(c.barrier(deps));
}

TEST(Collectives, IdleOnlyRespectsCalendars) {
  VirtualCluster c(cfg());
  for (int n = 0; n < 4; ++n) c.set_nic_calendar(n, {{0.0, 10.0}});
  c.host(1).put("blob", rand_buf(100, 7));
  CollectiveOptions opts;
  opts.idle_only = true;
  auto finish = broadcast(c, {0, 1, 2, 3}, 1, "blob", opts);
  for (TaskId t : finish) {
    if (t < 0) continue;
    EXPECT_GE(c.timeline().task(t).start, 10.0);
  }
  for (int n = 0; n < 4; ++n) EXPECT_DOUBLE_EQ(c.nic_interference(n), 0.0);
}

}  // namespace
}  // namespace eccheck::cluster
