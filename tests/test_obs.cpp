// Observability tests: StatsRegistry semantics, Chrome-trace export
// validity, and exactness of the per-edge-kind byte counters attached to
// engine reports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "ckpt/base_gemini.hpp"
#include "ckpt/base_remote.hpp"
#include "core/eccheck_engine.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "tests/json_checker.hpp"

namespace eccheck {
namespace {

using testutil::JsonChecker;
using testutil::count_occurrences;
using testutil::trace_names;

// --- StatsRegistry -----------------------------------------------------------

TEST(StatsRegistry, CountersGaugesHistograms) {
  obs::StatsRegistry reg;
  reg.add("net.p2p_data.bytes", 100);
  reg.add("net.p2p_data.bytes", 28);
  reg.add("net.p2p_data.count");
  EXPECT_EQ(reg.counter("net.p2p_data.bytes"), 128u);
  EXPECT_EQ(reg.counter("net.p2p_data.count"), 1u);
  EXPECT_EQ(reg.counter("never.touched"), 0u);

  reg.set_gauge("res.nic0.busy_s", 1.5);
  reg.set_gauge("res.nic0.busy_s", 2.5);  // last write wins
  EXPECT_DOUBLE_EQ(reg.gauge("res.nic0.busy_s"), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("never.touched"), 0.0);

  reg.observe("task.encode.duration_s", 1.0);
  reg.observe("task.encode.duration_s", 3.0);
  reg.observe("task.encode.duration_s", 2.0);
  auto h = reg.histograms().at("task.encode.duration_s");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 6.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);

  reg.clear();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.histograms().empty());
}

TEST(StatsRegistry, HistogramStreamingVariance) {
  // Welford accumulation: stddev without retaining samples.
  obs::StatsRegistry reg;
  for (double s : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    reg.observe("h", s);
  auto h = reg.histograms().at("h");
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  // Sample variance (n-1) of the classic example set is 32/7.
  EXPECT_NEAR(h.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(h.stddev(), std::sqrt(32.0 / 7.0), 1e-12);

  obs::HistSummary single;
  single.observe(3.25);
  EXPECT_DOUBLE_EQ(single.variance(), 0.0);
  EXPECT_DOUBLE_EQ(single.stddev(), 0.0);

  // stddev shows up in (valid) JSON output.
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"stddev\""), std::string::npos);
}

TEST(JsonNumber, RoundTripsAndGuardsNonFinite) {
  // Round-trip: the serialized decimal parses back to the identical double.
  for (double v : {0.0, 1.0 / 3.0, 4.9809042337804672e-07, 1e300,
                   123456789.123456789, -0.1}) {
    const std::string s = obs::json_number(v);
    EXPECT_TRUE(JsonChecker(s).valid()) << s;
    EXPECT_EQ(std::stod(s), v) << s;
  }
  // Integral values below 2^50 print without an exponent (readable counters).
  EXPECT_EQ(obs::json_number(42.0), "42");
  EXPECT_EQ(obs::json_number(502232980140.0), "502232980140");
  // IEEE specials have no JSON spelling: serialize as null, not "inf"/"nan".
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_number(-std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST(StatsRegistry, DeltaReportsOnlyMovedKeys) {
  obs::StatsRegistry reg;
  reg.add("a.bytes", 10);
  reg.add("b.bytes", 5);
  auto before = reg.counters();
  reg.add("a.bytes", 7);
  reg.add("c.bytes", 3);
  auto d = obs::StatsRegistry::delta(reg.counters(), before);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.at("a.bytes"), 7u);
  EXPECT_EQ(d.at("c.bytes"), 3u);
  EXPECT_EQ(d.count("b.bytes"), 0u);  // unchanged → dropped
}

TEST(StatsRegistry, JsonOutputIsValid) {
  obs::StatsRegistry reg;
  reg.add("net.p2p_data.bytes", 42);
  reg.set_gauge("timeline.makespan_s", 0.125);
  reg.observe("task.decode.duration_s", 0.5);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // An empty registry is still a valid document.
  reg.clear();
  EXPECT_TRUE(JsonChecker(reg.to_json()).valid()) << reg.to_json();
}

TEST(StatsRegistry, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  const std::string escaped = obs::json_escape("a\"b\\c\nd\te");
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  const std::string doc = "{\"k\":\"" + escaped + "\"}";
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
}

// --- Chrome-trace exporter ---------------------------------------------------

TEST(ChromeTrace, HandBuiltTimelineRendersTracksFlowsAndInstants) {
  sim::Timeline tl;
  auto nic = tl.add_resource("node0/tx");
  auto cpu = tl.add_resource("node0/cpu");
  auto a = tl.add_task("encode:r0", cpu, 1.0, {});
  auto b = tl.add_task("p2p_data:chunk", nic, 2.0, {a});
  tl.add_task("gate", sim::kNoResource, 0.0, {b});

  obs::ChromeTraceWriter w;
  w.add_timeline(tl, "unit");
  std::ostringstream os;
  w.write(os);
  const std::string json = os.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // One named thread per resource plus the virtual track (tid 0).
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""),
            tl.resource_count() + 1);
  EXPECT_NE(json.find("node0/tx"), std::string::npos);
  EXPECT_NE(json.find("node0/cpu"), std::string::npos);
  // Two occupied tasks → two complete events; the barrier is an instant.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1u);
  // Two dependency edges → two matched flow start/finish pairs.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 2u);
}

TEST(ChromeTrace, WriteFileFailsCleanlyOnBadPath) {
  obs::ChromeTraceWriter w;
  EXPECT_FALSE(w.write_file("/nonexistent-dir-xyz/trace.json"));
}

TEST(ChromeTrace, CollectTimelineStatsFoldsResourcesAndStages) {
  sim::Timeline tl;
  auto nic = tl.add_resource("nic");
  tl.add_task("send:key/1", nic, 1.0, {});
  tl.add_task("send:key/2", nic, 3.0, {});
  obs::StatsRegistry reg;
  obs::collect_timeline_stats(tl, reg, "save.");
  // Labels collapse to the stage before ':' — no per-key cardinality.
  EXPECT_EQ(reg.counter("save.task.send.count"), 2u);
  auto h = reg.histograms().at("save.task.send.duration_s");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("save.res.nic.busy_s"), 4.0);
  EXPECT_DOUBLE_EQ(reg.gauge("save.timeline.makespan_s"), tl.makespan());
}

// --- end-to-end: engines populate report stats -------------------------------

cluster::ClusterConfig obs_cluster_config() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 2;
  cfg.nic_bandwidth = gbps(100);
  cfg.remote_storage_bandwidth = gbps(5);
  // Fractional scale stresses the per-event rounding that the counters must
  // reproduce exactly.
  cfg.size_scale = 3.7;
  return cfg;
}

std::vector<dnn::StateDict> obs_shards() {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kGPT2, 128, 2, 8, "obs");
  cfg.model.vocab = 512;
  cfg.parallelism = {2, 4, 1};
  cfg.seed = 19;
  return dnn::make_sharded_checkpoint(cfg);
}

std::uint64_t sum_with(const std::map<std::string, std::uint64_t>& stats,
                       const std::string& prefix, const std::string& suffix) {
  std::uint64_t total = 0;
  for (const auto& [k, v] : stats) {
    if (k.size() < prefix.size() + suffix.size()) continue;
    if (k.compare(0, prefix.size(), prefix) != 0) continue;
    if (k.compare(k.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    total += v;
  }
  return total;
}

TEST(EngineStats, NetworkByteCountersSumExactlyToReport) {
  cluster::VirtualCluster cluster(obs_cluster_config());
  auto shards = obs_shards();
  core::ECCheckConfig cfg;
  cfg.k = 2;
  cfg.m = 2;
  cfg.packet_size = kib(64);
  cfg.flush_to_remote = true;
  core::ECCheckEngine engine(cfg);

  auto save = engine.save(cluster, shards, 1);
  EXPECT_FALSE(save.stats.empty());
  EXPECT_EQ(sum_with(save.stats, "net.", ".bytes"), save.network_bytes);
  EXPECT_EQ(save.stats.at("remote.write.bytes"), save.remote_bytes);
  // The protocol's edge kinds are individually visible.
  EXPECT_GT(save.stats.at("net.p2p_data.bytes"), 0u);
  EXPECT_GT(save.stats.at("net.xor_reduce.bytes"), 0u);
  EXPECT_GT(save.stats.at("net.meta_bcast.bytes"), 0u);

  cluster.kill(1);
  cluster.replace(1);
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_FALSE(load.stats.empty());
  EXPECT_GT(sum_with(load.stats, "net.", ".bytes"), 0u);
}

TEST(EngineStats, SecondSaveReportsOnlyItsOwnDelta) {
  // The registry is cumulative for the cluster's lifetime; reports must
  // still describe exactly one operation.
  cluster::VirtualCluster cluster(obs_cluster_config());
  auto shards = obs_shards();
  core::ECCheckConfig cfg;
  cfg.k = 2;
  cfg.m = 2;
  cfg.packet_size = kib(64);
  core::ECCheckEngine engine(cfg);
  auto first = engine.save(cluster, shards, 1);
  auto second = engine.save(cluster, shards, 2);
  EXPECT_EQ(sum_with(second.stats, "net.", ".bytes"), second.network_bytes);
  EXPECT_EQ(first.stats.at("net.p2p_data.bytes"),
            second.stats.at("net.p2p_data.bytes"));
  // The cluster-lifetime counter holds both saves.
  EXPECT_EQ(cluster.stats().counter("net.p2p_data.bytes"),
            2 * first.stats.at("net.p2p_data.bytes"));
}

TEST(EngineStats, BaselineEnginesPopulateStatsToo) {
  auto shards = obs_shards();
  {
    cluster::VirtualCluster cluster(obs_cluster_config());
    ckpt::RemoteSyncEngine base1;
    auto rep = base1.save(cluster, shards, 1);
    EXPECT_EQ(sum_with(rep.stats, "net.", ".bytes"), rep.network_bytes);
    EXPECT_EQ(sum_with(rep.stats, "remote.write", ".bytes"), rep.remote_bytes);
  }
  {
    cluster::VirtualCluster cluster(obs_cluster_config());
    ckpt::GeminiReplicationEngine base3(2);
    auto rep = base3.save(cluster, shards, 1);
    EXPECT_EQ(sum_with(rep.stats, "net.", ".bytes"), rep.network_bytes);
    std::vector<dnn::StateDict> out;
    // A failure-free load moves nothing — the delta must be empty, not a
    // replay of the cumulative registry.
    auto idle = base3.load(cluster, 1, out);
    ASSERT_TRUE(idle.success) << idle.detail;
    EXPECT_EQ(sum_with(idle.stats, "net.", ".bytes"), 0u);
    // Refilling a replaced node does move bytes.
    cluster.kill(1);
    cluster.replace(1);
    auto load = base3.load(cluster, 1, out);
    ASSERT_TRUE(load.success) << load.detail;
    EXPECT_GT(sum_with(load.stats, "net.", ".bytes"), 0u);
  }
}

TEST(EngineStats, SaveLoadTraceIsValidWithTrackPerResource) {
  // The acceptance shape of `eccheck_cli --trace-out`: save + kill + load,
  // both timelines in one file, a named track per resource, and at least
  // four distinct protocol task names.
  cluster::VirtualCluster cluster(obs_cluster_config());
  auto shards = obs_shards();
  core::ECCheckConfig cfg;
  cfg.k = 2;
  cfg.m = 2;
  cfg.packet_size = kib(64);
  core::ECCheckEngine engine(cfg);

  obs::ChromeTraceWriter w;
  engine.save(cluster, shards, 1);
  w.add_timeline(cluster.timeline(), "save");
  const std::size_t resources = cluster.timeline().resource_count();

  cluster.kill(2);
  cluster.replace(2);
  std::vector<dnn::StateDict> out;
  ASSERT_TRUE(engine.load(cluster, 1, out).success);
  w.add_timeline(cluster.timeline(), "load");

  std::ostringstream os;
  w.write(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Both processes name every resource track (plus one virtual track each).
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 2 * (resources + 1));
  EXPECT_GT(count_occurrences(json, "\"pid\":2"), 0u);

  auto names = trace_names(json);
  names.erase("dep");
  names.erase("process_name");
  names.erase("thread_name");
  EXPECT_GE(names.size(), 4u) << [&] {
    std::string all;
    for (const auto& n : names) all += n + " ";
    return all;
  }();
}

}  // namespace
}  // namespace eccheck
