// Self-healing checkpoint service: liveness tracking, epoch fencing,
// degraded-mode serving, bounded admission, idempotent retries, and the
// full death → declaration → replacement → repair cycle over real (UDS)
// sockets. Daemons run as threads here (the multi-process version lives in
// chaos::SocketCampaign); the socket fabric between them is the real one.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/failure_detector.hpp"
#include "common/check.hpp"
#include "core/fabric_engine.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "net/retry_policy.hpp"
#include "obs/json.hpp"
#include "svc/checkpoint_service.hpp"

namespace eccheck {
namespace {

namespace fs = std::filesystem;
using ms = std::chrono::milliseconds;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/eccheck-selfheal-XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

constexpr int kK = 2;
constexpr int kM = 2;
constexpr int kNodes = kK + kM;
constexpr int kGpn = 2;
constexpr int kWorld = kNodes * kGpn;

net::TransportOptions fast_opts(const TempDir& dir) {
  net::TransportOptions o;
  o.connect_timeout = net::Millis(500);
  o.connect_retries = 20;
  o.backoff_base = net::Millis(2);
  o.backoff_max = net::Millis(50);
  o.io_timeout = net::Millis(5000);
  o.remote_dir = dir.path + "/remote";
  return o;
}

/// Fast liveness cadence so declaration happens in test time, not ops time.
net::TransportOptions live_opts(const TempDir& dir) {
  net::TransportOptions o = fast_opts(dir);
  o.heartbeat_period = net::Millis(100);
  o.heartbeat_timeout = net::Millis(400);
  o.suspect_probes = 2;
  return o;
}

core::ECCheckConfig ec_config() {
  core::ECCheckConfig cfg;
  cfg.k = kK;
  cfg.m = kM;
  cfg.packet_size = 16 * 1024;
  return cfg;
}

svc::WorkerDaemonConfig worker_config(const TempDir& dir, int rank,
                                      bool with_coordinator) {
  svc::WorkerDaemonConfig cfg;
  cfg.rank = rank;
  for (int r = 0; r < kNodes; ++r)
    cfg.fabric_eps.push_back(net::Endpoint::uds(
        dir.path + "/rank" + std::to_string(r) + ".sock"));
  cfg.control_ep =
      net::Endpoint::uds(dir.path + "/ctl" + std::to_string(rank) + ".sock");
  cfg.fabric_opts = with_coordinator ? live_opts(dir) : fast_opts(dir);
  cfg.ec = ec_config();
  cfg.gpus_per_node = kGpn;
  if (with_coordinator)
    cfg.coordinator_ep = net::Endpoint::uds(dir.path + "/live.sock");
  return cfg;
}

struct DaemonThread {
  std::unique_ptr<svc::WorkerDaemon> daemon;
  std::thread thread;

  explicit DaemonThread(svc::WorkerDaemonConfig cfg)
      : daemon(std::make_unique<svc::WorkerDaemon>(std::move(cfg))) {
    thread = std::thread([this] { daemon->run(); });
  }
  ~DaemonThread() {
    if (thread.joinable()) thread.join();
  }
};

std::map<int, std::uint64_t> want_digests(const std::string& job,
                                          std::int64_t iteration) {
  const dnn::CheckpointGenConfig gen =
      svc::job_gen_config(job, iteration, kWorld);
  std::map<int, std::uint64_t> out;
  for (int w = 0; w < kWorld; ++w)
    out[w] = dnn::make_worker_state_dict(gen, w).digest();
  return out;
}

struct ParsedBody {
  std::int64_t version = 0;
  std::int64_t iteration = 0;
  std::map<int, std::uint64_t> digests;
};

ParsedBody parse_body(const std::string& body) {
  ParsedBody p;
  std::istringstream is(body);
  std::string tok;
  while (is >> tok) {
    if (tok == ";") break;
    if (tok.rfind("version=", 0) == 0)
      p.version = std::stoll(tok.substr(8));
    else if (tok.rfind("iteration=", 0) == 0)
      p.iteration = std::stoll(tok.substr(10));
    else if (tok[0] == 'w' && tok.find(':') != std::string::npos)
      p.digests[std::stoi(tok.substr(1, tok.find(':') - 1))] =
          std::stoull(tok.substr(tok.find(':') + 1), nullptr, 16);
  }
  return p;
}

bool poll_until(const std::function<bool()>& pred, double secs) {
  const auto deadline =
      std::chrono::steady_clock::now() + ms(static_cast<int>(secs * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(ms(100));
  }
  return false;
}

double health_number(const std::string& body, const char* field) {
  std::string perr;
  const std::unique_ptr<obs::JsonValue> doc =
      obs::JsonValue::parse(body, &perr);
  if (doc == nullptr) return -1;
  const obs::JsonValue* v = doc->find(field);
  return v != nullptr ? v->as_number() : -1;
}

// ---------------------------------------------------------------------------
// LivenessTracker: deterministic wall-clock state machine, no sleeping.
// ---------------------------------------------------------------------------

using Clock = cluster::LivenessTracker::Clock;
using cluster::Liveness;

cluster::LivenessTracker::Config tracker_config() {
  cluster::LivenessTracker::Config cfg;
  cfg.heartbeat_timeout = ms(500);
  cfg.suspect_probes = 2;
  return cfg;
}

TEST(LivenessTracker, SilenceMakesSuspectsAndProbesConfirmDeath) {
  const Clock::time_point t0 = Clock::now();
  cluster::LivenessTracker t(tracker_config(), 4, t0);
  EXPECT_EQ(t.alive_count(), 4);

  // Startup grace: nobody has beaten yet, but nobody is suspect either.
  EXPECT_TRUE(t.evaluate(t0 + ms(400)).empty());

  // Ranks 0..2 beat; rank 3 stays silent past the timeout.
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(t.beat(r, 1, t0 + ms(400)), Liveness::kAlive);
  const std::vector<int> fresh = t.evaluate(t0 + ms(600));
  ASSERT_EQ(fresh, std::vector<int>{3});
  EXPECT_EQ(t.state(3), Liveness::kSuspect);
  EXPECT_EQ(t.suspects(), std::vector<int>{3});
  EXPECT_EQ(t.alive_count(), 3);

  // A suspect is gray, not gone: no repair yet, and two silent probe rounds
  // are needed before death.
  EXPECT_EQ(t.probe_result(3, false, false, t0 + ms(700)),
            Liveness::kSuspect);
  EXPECT_EQ(t.probe_result(3, false, false, t0 + ms(800)), Liveness::kDead);
  EXPECT_EQ(t.dead(), std::vector<int>{3});

  // Death is a one-way door: a beat from the corpse reports kDead so the
  // caller can fence it, and never revives the rank.
  EXPECT_EQ(t.beat(3, 1, t0 + ms(900)), Liveness::kDead);
  EXPECT_EQ(t.state(3), Liveness::kDead);

  // Only an explicit repair admission revives it, with the new epoch.
  t.mark_alive(3, 7, t0 + ms(1000));
  EXPECT_EQ(t.state(3), Liveness::kAlive);
  EXPECT_EQ(t.peer(3).epoch, 7u);
  EXPECT_EQ(t.alive_count(), 4);
}

TEST(LivenessTracker, BeatsAndAliveEvidenceReviveSuspects) {
  const Clock::time_point t0 = Clock::now();
  cluster::LivenessTracker t(tracker_config(), 2, t0);

  // A beat arriving while suspect revives directly.
  ASSERT_EQ(t.evaluate(t0 + ms(600)), (std::vector<int>{0, 1}));
  EXPECT_EQ(t.beat(0, 1, t0 + ms(650)), Liveness::kAlive);

  // Probe-observed alive evidence (a beat arrived between probe rounds)
  // also revives; the failed-probe counter resets.
  EXPECT_EQ(t.probe_result(1, false, true, t0 + ms(650)), Liveness::kAlive);
  EXPECT_EQ(t.peer(1).failed_probes, 0);
}

TEST(LivenessTracker, HardEvidenceSkipsTheProbeQuorum) {
  const Clock::time_point t0 = Clock::now();
  cluster::LivenessTracker t(tracker_config(), 2, t0);
  ASSERT_FALSE(t.evaluate(t0 + ms(600)).empty());
  // Connection refused = the process is gone; one probe is enough.
  EXPECT_EQ(t.probe_result(0, true, false, t0 + ms(700)), Liveness::kDead);
  // mark_dead: immediate external evidence (EOF mid-request).
  t.mark_dead(1);
  EXPECT_EQ(t.dead(), (std::vector<int>{0, 1}));
}

// ---------------------------------------------------------------------------
// RetryPolicy: one spec string controls every socket timing knob.
// ---------------------------------------------------------------------------

TEST(RetryPolicy, ParseOverridesAndDescribeRoundTrips) {
  const net::RetryPolicy p = net::RetryPolicy::parse(
      "connect_timeout=7,connect_retries=3,backoff_base=1,backoff_max=9,"
      "io_timeout=1234,heartbeat_period=55,heartbeat_timeout=220,"
      "suspect_probes=4,ack_window=16,send_queue_frames=64");
  EXPECT_EQ(p.connect_timeout.count(), 7);
  EXPECT_EQ(p.connect_retries, 3);
  EXPECT_EQ(p.backoff_base.count(), 1);
  EXPECT_EQ(p.backoff_max.count(), 9);
  EXPECT_EQ(p.io_timeout.count(), 1234);
  EXPECT_EQ(p.heartbeat_period.count(), 55);
  EXPECT_EQ(p.heartbeat_timeout.count(), 220);
  EXPECT_EQ(p.suspect_probes, 4);
  EXPECT_EQ(p.ack_window, 16);
  EXPECT_EQ(p.send_queue_frames, 64);

  // describe() → parse() is the identity; partial specs override `base`.
  const net::RetryPolicy again = net::RetryPolicy::parse(p.describe());
  EXPECT_EQ(again.describe(), p.describe());
  const net::RetryPolicy partial = net::RetryPolicy::parse("io_timeout=42", p);
  EXPECT_EQ(partial.io_timeout.count(), 42);
  EXPECT_EQ(partial.heartbeat_period.count(), 55);

  EXPECT_THROW(net::RetryPolicy::parse("warp_speed=9"), CheckFailure);
  EXPECT_THROW(net::RetryPolicy::parse("io_timeout=fast"), CheckFailure);
  // A zero-frame window could never send anything; reject it at parse time.
  EXPECT_THROW(net::RetryPolicy::parse("ack_window=0"), CheckFailure);
  EXPECT_THROW(net::RetryPolicy::parse("send_queue_frames=0"), CheckFailure);
}

// ---------------------------------------------------------------------------
// Membership: the alive-set algebra degraded collectives run on.
// ---------------------------------------------------------------------------

TEST(Membership, SitesDeadRanksOnTheAdopter) {
  const core::Membership full;
  EXPECT_TRUE(full.full());
  EXPECT_TRUE(full.is_alive(3));
  EXPECT_EQ(full.site(3), 3);
  EXPECT_EQ(full.alive_count(4), 4);

  const core::Membership m = core::Membership::of({3, 1, 3});
  EXPECT_EQ(m.alive, (std::vector<int>{1, 3}));  // sorted, deduped
  EXPECT_FALSE(m.full());
  EXPECT_TRUE(m.is_alive(1));
  EXPECT_FALSE(m.is_alive(0));
  EXPECT_EQ(m.adopter(), 1);
  EXPECT_EQ(m.site(0), 1);  // dead rank's work lands on the adopter
  EXPECT_EQ(m.site(3), 3);
  EXPECT_EQ(m.alive_count(4), 2);
  EXPECT_NO_THROW(m.check(4));
  EXPECT_THROW(m.check(2), CheckFailure);  // rank 3 outside world 2
  EXPECT_THROW(core::Membership::of({}).adopter(), CheckFailure);
}

// ---------------------------------------------------------------------------
// Epoch fencing at the worker: stale commands are refused, newer epochs
// adopted monotonically.
// ---------------------------------------------------------------------------

TEST(SelfHealService, WorkerFencesStaleEpochs) {
  TempDir dir;
  std::vector<std::unique_ptr<DaemonThread>> daemons;
  for (int r = 0; r < kNodes; ++r)
    daemons.push_back(
        std::make_unique<DaemonThread>(worker_config(dir, r, false)));
  const net::Endpoint ctl0 = net::Endpoint::uds(dir.path + "/ctl0.sock");
  const net::TransportOptions opts = fast_opts(dir);

  // Adopt epoch 5 via reset; a stale reset is ignored, not an error.
  svc::ControlReply r = svc::client_request(ctl0, "reset", "epoch=5", opts);
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(r.body, "ok epoch=5");
  r = svc::client_request(ctl0, "reset", "epoch=3", opts);
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(r.body, "ok epoch=5") << "stale reset must not regress the epoch";

  // A data command carrying a stale epoch is refused before any collective
  // work starts — this is what stops a resurrected corpse's backlog.
  r = svc::client_request(ctl0, "load", "job epoch=3", opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.body.find("fenced"), std::string::npos) << r.body;

  r = svc::client_request(ctl0, "status", "", opts);
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.body.find("epoch=5"), std::string::npos) << r.body;

  for (int rk = 0; rk < kNodes; ++rk)
    svc::client_request(net::Endpoint::uds(dir.path + "/ctl" +
                                           std::to_string(rk) + ".sock"),
                        "exit", "", opts);
}

// ---------------------------------------------------------------------------
// Bounded admission + idempotent retries, against a live coordinator.
// ---------------------------------------------------------------------------

TEST(SelfHealService, AdmissionQueueBoundsAndIdempotencyTokens) {
  TempDir dir;
  std::vector<std::unique_ptr<DaemonThread>> daemons;
  for (int r = 0; r < kNodes; ++r)
    daemons.push_back(
        std::make_unique<DaemonThread>(worker_config(dir, r, false)));

  svc::CoordinatorConfig ccfg;
  ccfg.client_ep = net::Endpoint::uds(dir.path + "/client.sock");
  for (int r = 0; r < kNodes; ++r)
    ccfg.worker_eps.push_back(net::Endpoint::uds(
        dir.path + "/ctl" + std::to_string(r) + ".sock"));
  ccfg.opts = fast_opts(dir);
  ccfg.opts.io_timeout = net::Millis(15000);
  ccfg.opts.connect_retries = 4;
  ccfg.max_queue = 1;
  svc::Coordinator coordinator(ccfg);
  std::thread coord_thread([&coordinator] { coordinator.run(); });

  const net::TransportOptions copts = ccfg.opts;
  auto request = [&](const std::string& cmd, const std::string& args) {
    return svc::client_request(ccfg.client_ep, cmd, args, copts);
  };

  // Freeze one worker so the next save's fan-out holds the single-threaded
  // main loop long enough for a flood to hit the admission queue.
  svc::ControlReply r =
      svc::client_request(ccfg.worker_eps[0], "freeze", "1200", copts);
  ASSERT_TRUE(r.ok) << r.body;

  std::thread saver([&] {
    const svc::ControlReply sr = request("save", "job");
    EXPECT_TRUE(sr.ok) << sr.body;
  });
  std::this_thread::sleep_for(ms(250));  // save is now in flight

  // Six concurrent requests against max_queue=1: every one is answered —
  // either served or typed kStatusBusy, never dropped or stalled.
  constexpr int kFlood = 6;
  std::atomic<int> ok{0}, busy{0};
  std::vector<std::thread> flood;
  for (int i = 0; i < kFlood; ++i)
    flood.emplace_back([&] {
      const svc::ControlReply fr = request("status", "");
      if (fr.ok)
        ++ok;
      else if (fr.status == svc::kStatusBusy)
        ++busy;
    });
  for (std::thread& t : flood) t.join();
  saver.join();
  EXPECT_EQ(ok.load() + busy.load(), kFlood);
  EXPECT_GE(busy.load(), 1) << "flood never hit the admission bound";
  EXPECT_GE(ok.load(), 1);
  for (int i = 0; i < busy.load(); ++i) {
    // Busy replies carry the queue bound so clients can back off sensibly.
    const svc::ControlReply br = request("status", "");
    if (!br.ok) EXPECT_NE(br.body.find("busy"), std::string::npos);
  }

  // The rejected counter made it into status.
  r = request("status", "");
  ASSERT_TRUE(r.ok) << r.body;

  // Idempotency: a retried save under the same token replays the recorded
  // outcome — exactly one version is committed.
  const svc::ControlReply first = request("save", "job token=alpha");
  ASSERT_TRUE(first.ok) << first.body;
  const std::int64_t v = parse_body(first.body).version;
  const svc::ControlReply replay = request("save", "job token=alpha");
  ASSERT_TRUE(replay.ok) << replay.body;
  EXPECT_EQ(replay.body, first.body)
      << "same token must replay, not re-commit";
  const svc::ControlReply fresh = request("save", "job token=beta");
  ASSERT_TRUE(fresh.ok) << fresh.body;
  EXPECT_EQ(parse_body(fresh.body).version, v + 1)
      << "a new token commits the next version";

  r = request("shutdown", "");
  EXPECT_TRUE(r.ok);
  coord_thread.join();
}

// ---------------------------------------------------------------------------
// The full self-healing cycle: heartbeats, death declaration, degraded
// serving, replacement join, automatic repair back to full redundancy.
// ---------------------------------------------------------------------------

struct LiveCluster {
  TempDir dir;
  std::vector<std::unique_ptr<DaemonThread>> daemons;
  svc::CoordinatorConfig ccfg;
  std::unique_ptr<svc::Coordinator> coordinator;
  std::thread coord_thread;
  net::TransportOptions copts;

  LiveCluster() {
    ccfg.client_ep = net::Endpoint::uds(dir.path + "/client.sock");
    ccfg.liveness_ep = net::Endpoint::uds(dir.path + "/live.sock");
    for (int r = 0; r < kNodes; ++r)
      ccfg.worker_eps.push_back(net::Endpoint::uds(
          dir.path + "/ctl" + std::to_string(r) + ".sock"));
    ccfg.opts = live_opts(dir);
    ccfg.opts.io_timeout = net::Millis(10000);
    ccfg.opts.connect_retries = 4;
    ccfg.data_k = kK;
    ccfg.parity_m = kM;
    coordinator = std::make_unique<svc::Coordinator>(ccfg);
    coord_thread = std::thread([this] { coordinator->run(); });
    for (int r = 0; r < kNodes; ++r)
      daemons.push_back(
          std::make_unique<DaemonThread>(worker_config(dir, r, true)));
    copts = ccfg.opts;
    copts.io_timeout = net::Millis(30000);
  }

  svc::ControlReply request(const std::string& cmd, const std::string& args) {
    return svc::client_request(ccfg.client_ep, cmd, args, copts);
  }
  /// Poll `status` (each request also drives the coordinator's detection
  /// tick) until the body contains `needle`.
  bool status_until(const std::string& needle, double secs) {
    return poll_until(
        [&] {
          const svc::ControlReply r = request("status", "");
          return r.ok && r.body.find(needle) != std::string::npos;
        },
        secs);
  }
  void shutdown() {
    const svc::ControlReply r = request("shutdown", "");
    EXPECT_TRUE(r.ok);
    coord_thread.join();
  }
};

TEST(SelfHealService, DeathDeclarationDegradedServingAndRepair) {
  LiveCluster c;

  svc::ControlReply r = c.request("save", "job");
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(parse_body(r.body).version, 1);
  EXPECT_EQ(parse_body(r.body).digests, want_digests("job", 1));

  // Hard death: the daemon exits, its listener closes, probes see refused.
  const int victim = 1;
  svc::client_request(c.ccfg.worker_eps[victim], "exit", "", c.copts);
  c.daemons[victim].reset();
  ASSERT_TRUE(c.status_until("deaths=1", 20))
      << "coordinator never declared the death";

  // Degraded load: dead ≤ m, so the full checkpoint is served — including
  // the dead rank's shards, re-sited on the adopter — bit-exactly.
  r = c.request("load", "job");
  ASSERT_TRUE(r.ok) << r.body;
  {
    const ParsedBody p = parse_body(r.body);
    EXPECT_EQ(p.version, 1);
    EXPECT_EQ(p.digests, want_digests("job", 1));
    EXPECT_NE(r.body.find("degraded"), std::string::npos) << r.body;
  }

  // Degraded save: commits a new version at reduced redundancy.
  r = c.request("save", "job");
  ASSERT_TRUE(r.ok) << r.body;
  {
    const ParsedBody p = parse_body(r.body);
    EXPECT_EQ(p.version, 2);
    EXPECT_EQ(p.digests, want_digests("job", p.iteration));
    EXPECT_NE(r.body.find("degraded"), std::string::npos) << r.body;
  }

  // Health during the under-replicated window.
  r = c.request("health", "");
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(health_number(r.body, "deaths"), 1);
  EXPECT_GE(health_number(r.body, "degraded_ops"), 2);
  EXPECT_NE(r.body.find("\"degraded\":true"), std::string::npos) << r.body;

  // Replacement on the same endpoints: it joins, the repair controller
  // rebuilds its rows (workflow B) and restores full m-redundancy — the
  // survivors are never restarted.
  c.daemons[victim] =
      std::make_unique<DaemonThread>(worker_config(c.dir, victim, true));
  ASSERT_TRUE(c.status_until("repairs=1", 30))
      << "repair never completed";

  // Full-strength again: save/load round-trips bit-exactly, not degraded.
  r = c.request("save", "job");
  ASSERT_TRUE(r.ok) << r.body;
  {
    const ParsedBody p = parse_body(r.body);
    EXPECT_EQ(p.version, 3);
    EXPECT_EQ(p.digests, want_digests("job", p.iteration));
    EXPECT_EQ(r.body.find("degraded"), std::string::npos) << r.body;
  }
  r = c.request("health", "");
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(health_number(r.body, "repairs"), 1);
  EXPECT_NE(r.body.find("\"degraded\":false"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"effective_m\":" + std::to_string(kM)),
            std::string::npos)
      << r.body;

  c.shutdown();
}

TEST(SelfHealService, GrayFreezeIsDeclaredDeadAndFencedOnWake) {
  LiveCluster c;

  svc::ControlReply r = c.request("save", "job");
  ASSERT_TRUE(r.ok) << r.body;

  // Gray failure: the worker stops serving AND heartbeating but its accept
  // backlog stays open — probes succeed, so only the missing beats (via
  // suspect_probes silent rounds) can kill it. Freeze outlasts detection.
  const int victim = 2;
  r = svc::client_request(c.ccfg.worker_eps[victim], "freeze", "8000",
                          c.copts);
  ASSERT_TRUE(r.ok) << r.body;
  // Let the coordinator's idle ticks (every 250ms) run detection before we
  // send anything that fans out: a status request landing while the frozen
  // rank still counts as alive would ping it and block the single-threaded
  // main loop — and its ticks — for a whole io_timeout.
  std::this_thread::sleep_for(ms(1800));
  ASSERT_TRUE(c.status_until("deaths=1", 20))
      << "gray worker never declared dead";

  // Served while the corpse is still technically accepting connections.
  r = c.request("load", "job");
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(parse_body(r.body).digests, want_digests("job", 1));
  EXPECT_NE(r.body.find("degraded"), std::string::npos) << r.body;

  // On wake the corpse's first beat is answered `fenced`: it must exit
  // rather than rejoin with stale state. The join below then repairs.
  ASSERT_TRUE(poll_until(
      [&] {
        const svc::ControlReply h = c.request("health", "");
        return h.ok && health_number(h.body, "fenced_beats") >= 1;
      },
      20))
      << "woken corpse was never fenced";
  c.daemons[victim].reset();  // joins: the daemon exited on the fenced beat

  c.daemons[victim] =
      std::make_unique<DaemonThread>(worker_config(c.dir, victim, true));
  ASSERT_TRUE(c.status_until("repairs=1", 30)) << "repair never completed";

  r = c.request("save", "job");
  ASSERT_TRUE(r.ok) << r.body;
  const ParsedBody p = parse_body(r.body);
  EXPECT_EQ(p.digests, want_digests("job", p.iteration));
  EXPECT_EQ(r.body.find("degraded"), std::string::npos) << r.body;

  c.shutdown();
}

}  // namespace
}  // namespace eccheck
