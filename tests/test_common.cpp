// Unit tests for the common substrate: buffers, XOR kernel, deterministic
// RNG, CRC64, unit helpers.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "common/crc64.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace eccheck {
namespace {

TEST(Buffer, ZeroInitialized) {
  Buffer b(257);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_EQ(b.data()[i], std::byte{0});
}

TEST(Buffer, Alignment) {
  for (std::size_t sz : {1u, 63u, 64u, 4096u}) {
    Buffer b(sz);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % Buffer::kAlignment,
              0u);
  }
}

TEST(Buffer, CopyOfAndEquality) {
  Buffer a(128, Buffer::Init::kUninitialized);
  fill_random(a.span(), 7);
  Buffer b = Buffer::copy_of(a.span());
  EXPECT_EQ(a, b);
  b.data()[5] ^= std::byte{1};
  EXPECT_FALSE(a == b);
}

TEST(Buffer, CloneIsIndependent) {
  Buffer a(64, Buffer::Init::kUninitialized);
  fill_random(a.span(), 1);
  Buffer c = a.clone();
  c.data()[0] ^= std::byte{0xff};
  EXPECT_FALSE(a == c);
}

TEST(Buffer, SubspanBounds) {
  Buffer a(64);
  EXPECT_NO_THROW(a.subspan(0, 64));
  EXPECT_NO_THROW(a.subspan(64, 0));
  EXPECT_THROW(a.subspan(60, 5), CheckFailure);
}

TEST(Buffer, EmptyBuffer) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  Buffer c(0);
  EXPECT_TRUE(b == c);
}

TEST(XorInto, SelfInverse) {
  Buffer a(333, Buffer::Init::kUninitialized);
  Buffer b(333, Buffer::Init::kUninitialized);
  fill_random(a.span(), 11);
  fill_random(b.span(), 22);
  Buffer orig = a.clone();
  xor_into(a.span(), b.span());
  EXPECT_FALSE(a == orig);
  xor_into(a.span(), b.span());
  EXPECT_EQ(a, orig);
}

TEST(XorInto, MatchesScalarReference) {
  Buffer a(117, Buffer::Init::kUninitialized);
  Buffer b(117, Buffer::Init::kUninitialized);
  fill_random(a.span(), 3);
  fill_random(b.span(), 4);
  Buffer expect(117, Buffer::Init::kUninitialized);
  for (std::size_t i = 0; i < 117; ++i)
    expect.data()[i] = a.data()[i] ^ b.data()[i];
  xor_into(a.span(), b.span());
  EXPECT_EQ(a, expect);
}

TEST(XorInto, SizeMismatchThrows) {
  Buffer a(16), b(17);
  EXPECT_THROW(xor_into(a.span(), b.span()), CheckFailure);
}

TEST(Rng, Deterministic) {
  Buffer a(100, Buffer::Init::kUninitialized);
  Buffer b(100, Buffer::Init::kUninitialized);
  fill_random(a.span(), 42);
  fill_random(b.span(), 42);
  EXPECT_EQ(a, b);
  fill_random(b.span(), 43);
  EXPECT_FALSE(a == b);
}

TEST(Rng, SplitMixDistribution) {
  SplitMix64 rng(1);
  int buckets[8] = {};
  for (int i = 0; i < 8000; ++i) ++buckets[rng.next() & 7];
  for (int c : buckets) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Crc64, EmptyAndSeed) {
  EXPECT_EQ(crc64({}), crc64({}));
  EXPECT_NE(crc64({}, 1), crc64({}, 2));
}

TEST(Crc64, SensitiveToEveryByte) {
  Buffer a(64, Buffer::Init::kUninitialized);
  fill_random(a.span(), 5);
  const std::uint64_t base = crc64(a.span());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] ^= std::byte{1};
    EXPECT_NE(crc64(a.span()), base) << "byte " << i;
    a.data()[i] ^= std::byte{1};
  }
  EXPECT_EQ(crc64(a.span()), base);
}

TEST(Crc64, OrderSensitive) {
  std::byte ab[] = {std::byte{'a'}, std::byte{'b'}};
  std::byte ba[] = {std::byte{'b'}, std::byte{'a'}};
  EXPECT_NE(crc64({ab, 2}), crc64({ba, 2}));
}

TEST(Units, Sizes) {
  EXPECT_EQ(kib(1), 1024u);
  EXPECT_EQ(mib(64), 64u * 1024 * 1024);
  EXPECT_EQ(gib(2), 2ull * 1024 * 1024 * 1024);
}

TEST(Units, Bandwidth) {
  EXPECT_DOUBLE_EQ(gbps(8), 1e9);           // 8 Gbit/s = 1e9 B/s
  EXPECT_DOUBLE_EQ(gibps(1), 1073741824.0);
}

TEST(Units, HumanReadable) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(6.5 * 1024 * 1024 * 1024), "6.50 GiB");
  EXPECT_EQ(human_seconds(1.5), "1.500 s");
  EXPECT_EQ(human_seconds(0.0025), "2.500 ms");
}

TEST(Check, ThrowsWithMessage) {
  try {
    ECC_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace eccheck
