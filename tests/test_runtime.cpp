// Runtime tests: thread pool, bounded queue, staged pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/thread_pool.hpp"

namespace eccheck::runtime {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSmall) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  std::atomic<int> c{0};
  pool.parallel_for(2, [&](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 2);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // parallel_for called from inside a pool task must not block on chunks
  // queued behind the caller's own task: on a 1-thread pool that deadlocks
  // (the sole worker waits for work only it could run). A pool-resident
  // caller runs the loop inline instead.
  ThreadPool pool(1);
  EXPECT_FALSE(pool.on_worker_thread());
  std::vector<std::atomic<int>> hits(64);
  auto done = pool.submit([&] {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  });
  EXPECT_EQ(done.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  done.get();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForInsideParallelFor) {
  // Two levels of nesting on a saturated pool: the outer chunks occupy all
  // workers, so every inner parallel_for must run inline.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  auto fut = pool.submit([&] {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  fut.get();
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ParallelEncodeMatchesSequential) {
  // The paper's thread-pool encode: disjoint slices processed concurrently
  // must equal a single-threaded pass.
  const std::size_t n = 1 << 16;
  Buffer src(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 77);
  Buffer seq(n), par(n);
  auto kernel = [&](MutableByteSpan dst, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      dst[i] = src.span()[i] ^ std::byte{0x5a};
  };
  kernel(seq.span(), 0, n);
  ThreadPool pool(4);
  const std::size_t kSlice = 4096;
  pool.parallel_for(n / kSlice, [&](std::size_t s) {
    kernel(par.span(), s * kSlice, (s + 1) * kSlice);
  });
  EXPECT_EQ(seq, par);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, BlocksProducerAtCapacity) {
  BoundedQueue<int> q(2);
  q.push(1);
  q.push(2);
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.push(3);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  q.pop();
  t.join();
  EXPECT_TRUE(pushed.load());
}

TEST(Pipeline, AppliesStagesInOrder) {
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  std::vector<std::function<void(int&)>> stages = {
      [](int& x) { x = x * 2; },
      [](int& x) { x = x + 1; },
      [](int& x) { x = x * 10; },
  };
  run_pipeline(items, stages, 4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(items[static_cast<std::size_t>(i)], (i * 2 + 1) * 10);
}

TEST(Pipeline, MatchesSequentialOnBuffers) {
  // encode → xor-reduce → "send" staged pipeline equals sequential result.
  struct Item {
    Buffer data;
    Buffer out;
  };
  auto make_items = [] {
    std::vector<Item> items;
    for (int i = 0; i < 16; ++i) {
      Item it;
      it.data = Buffer(1024, Buffer::Init::kUninitialized);
      fill_random(it.data.span(), static_cast<std::uint64_t>(i));
      it.out = Buffer(1024);
      items.push_back(std::move(it));
    }
    return items;
  };
  auto stage1 = [](Item& it) {
    for (std::size_t i = 0; i < it.data.size(); ++i)
      it.out.span()[i] = it.data.span()[i] ^ std::byte{0x33};
  };
  auto stage2 = [](Item& it) { xor_into(it.out.span(), it.data.span()); };

  auto seq = make_items();
  for (auto& it : seq) {
    stage1(it);
    stage2(it);
  }
  auto par = make_items();
  std::vector<std::function<void(Item&)>> stages = {stage1, stage2};
  run_pipeline(par, stages, 2);
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_EQ(seq[i].out, par[i].out) << i;
}

TEST(Pipeline, ReportsStats) {
  std::vector<int> items(10, 0);
  std::vector<std::function<void(int&)>> stages = {
      [](int&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      [](int&) {},
  };
  auto stats = run_pipeline(items, stages);
  ASSERT_EQ(stats.stage_busy_seconds.size(), 2u);
  EXPECT_GT(stats.stage_busy_seconds[0], 0.005);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(Pipeline, BusyPlusBlockedAccountsForStageWall) {
  // Stage threads are only ever inside the stage fn (busy) or a queue op
  // (blocked); per-stage busy + blocked must therefore fill the stage's
  // thread lifetime up to loop overhead. A slow producer makes stage 1
  // mostly blocked, which the split must expose.
  // The producer/consumer asymmetry must stay visible even when a loaded
  // machine stretches every sleep_for: 10x, not 4x, and generous slack —
  // this test measures the busy/blocked *split*, not the scheduler.
  std::vector<int> items(8, 0);
  std::vector<std::function<void(int&)>> stages = {
      [](int&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      },
      [](int&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
  };
  auto stats = run_pipeline(items, stages, 2, {"slow_src", "fast_sink"});
  ASSERT_EQ(stats.stage_blocked_seconds.size(), 2u);
  ASSERT_EQ(stats.stage_wall_seconds.size(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    const double busy = stats.stage_busy_seconds[s];
    const double blocked = stats.stage_blocked_seconds[s];
    const double wall = stats.stage_wall_seconds[s];
    EXPECT_GT(wall, 0.0);
    // Accounted time never exceeds the thread's lifetime (small scheduling
    // slack allowed)...
    EXPECT_LE(busy + blocked, wall + 0.05);
    // ...and covers most of it: the thread does nothing else.
    EXPECT_GE(busy + blocked, 0.5 * wall);
  }
  // The starved consumer spends more time blocked than working.
  EXPECT_GT(stats.stage_blocked_seconds[1], stats.stage_busy_seconds[1]);
  // Both stage threads live for roughly the whole pipeline run.
  EXPECT_GE(stats.stage_wall_seconds[0], 0.8 * stats.wall_seconds);
  EXPECT_GE(stats.stage_wall_seconds[1], 0.8 * stats.wall_seconds);
}

TEST(Pipeline, PropagatesStageExceptions) {
  std::vector<int> items(8, 0);
  std::vector<std::function<void(int&)>> stages = {
      [](int& x) { x += 1; },
      [](int& x) {
        if (x == 1) throw std::runtime_error("stage failure");
      },
  };
  EXPECT_THROW(run_pipeline(items, stages, 1), std::runtime_error);
}

TEST(Pipeline, EmptyInputsAreFine) {
  std::vector<int> none;
  std::vector<std::function<void(int&)>> stages = {[](int&) {}};
  auto stats = run_pipeline(none, stages);
  EXPECT_EQ(stats.wall_seconds, 0.0);
  std::vector<int> items(3, 1);
  std::vector<std::function<void(int&)>> no_stages;
  EXPECT_NO_THROW(run_pipeline(items, no_stages));
}

}  // namespace
}  // namespace eccheck::runtime
