// Training-profile tests: pipeline communication pattern, idle windows.
#include <gtest/gtest.h>

#include <set>

#include "trainsim/train_profile.hpp"

namespace eccheck::trainsim {
namespace {

Workload small_workload() {
  Workload w;
  w.microbatches = 4;
  w.forward_compute = 0.1;
  w.activation_bytes = 1000;
  w.optimizer_step = 0.05;
  return w;
}

TEST(TrainProfile, IterationContainsAllBusyWindows) {
  auto prof = simulate_iteration(small_workload(), 4, 1e5);
  ASSERT_EQ(prof.node_busy.size(), 4u);
  for (int n = 0; n < 4; ++n) {
    for (const auto& b : prof.node_busy[static_cast<std::size_t>(n)]) {
      EXPECT_GE(b.begin, 0.0);
      EXPECT_LE(b.end, prof.iteration_time);
      EXPECT_GT(b.length(), 0.0);
    }
  }
}

TEST(TrainProfile, MiddleStagesTalkMoreThanEdges) {
  auto prof = simulate_iteration(small_workload(), 4, 1e5);
  auto busy_time = [&](int n) {
    Seconds t = 0;
    for (const auto& b : prof.node_busy[static_cast<std::size_t>(n)])
      t += b.length();
    return t;
  };
  // Stage 0 only exchanges with stage 1; stage 1 with both neighbours.
  EXPECT_GT(busy_time(1), busy_time(0) * 1.2);
  EXPECT_GT(busy_time(2), busy_time(3) * 1.2);
}

TEST(TrainProfile, PipelineHasRealIdleFraction) {
  // The §II-C claim ECCheck relies on: plenty of NIC idle time exists.
  auto prof = simulate_iteration(small_workload(), 4, 1e5);
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(prof.idle_fraction(n), 0.5) << "node " << n;
    EXPECT_LT(prof.idle_fraction(n), 1.0) << "node " << n;
    EXPECT_GT(prof.largest_gap(n), 0.0);
  }
}

TEST(TrainProfile, SinglestageHasNoPipelineTraffic) {
  auto prof = simulate_iteration(small_workload(), 1, 1e5);
  EXPECT_TRUE(prof.node_busy[0].empty());
  EXPECT_DOUBLE_EQ(prof.idle_fraction(0), 1.0);
}

TEST(TrainProfile, DataParallelAddsAllReduceOnEveryNode) {
  Workload w = small_workload();
  w.grad_allreduce_bytes = 5000;
  auto dp1 = simulate_iteration(w, 4, 1e5, /*data_parallel=*/1);
  auto dp2 = simulate_iteration(w, 4, 1e5, /*data_parallel=*/2);
  EXPECT_GT(dp2.iteration_time, dp1.iteration_time);
  for (int n = 0; n < 4; ++n)
    EXPECT_LT(dp2.idle_fraction(n), dp1.idle_fraction(n));
}

TEST(TrainProfile, TiledRepeatsPattern) {
  auto prof = simulate_iteration(small_workload(), 4, 1e5);
  auto base = prof.node_busy[1];
  auto tiled = prof.tiled(1, 3);
  ASSERT_EQ(tiled.size(), base.size() * 3);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(tiled[i + base.size()].begin,
                     base[i].begin + prof.iteration_time);
  }
}

TEST(TrainProfile, SlowerNetworkMeansLongerBusyWindows) {
  auto fast = simulate_iteration(small_workload(), 4, 1e6);
  auto slow = simulate_iteration(small_workload(), 4, 1e4);
  EXPECT_LT(fast.node_busy[1][0].length(), slow.node_busy[1][0].length());
  EXPECT_GT(slow.iteration_time, fast.iteration_time);
}

TEST(Workload, EstimateScalesWithModelAndParallelism) {
  dnn::ParallelismSpec par{4, 4, 1};
  auto small = estimate_workload(dnn::gpt2_345m(), par);
  auto big = estimate_workload(dnn::table1_models()[2], par);  // 20B
  EXPECT_GT(big.forward_compute, small.forward_compute * 10);
  EXPECT_GT(big.activation_bytes, small.activation_bytes);

  dnn::ParallelismSpec deeper{4, 8, 1};
  auto shallower_stage = estimate_workload(dnn::table1_models()[2], deeper);
  EXPECT_LT(shallower_stage.forward_compute, big.forward_compute);
}

TEST(Workload, DataParallelismTriggersAllReduceBytes) {
  dnn::ParallelismSpec nodp{4, 4, 1};
  dnn::ParallelismSpec dp{4, 2, 2};
  EXPECT_EQ(estimate_workload(dnn::gpt2_345m(), nodp).grad_allreduce_bytes,
            0u);
  EXPECT_GT(estimate_workload(dnn::gpt2_345m(), dp).grad_allreduce_bytes, 0u);
}

}  // namespace
}  // namespace eccheck::trainsim
