// Virtual-time substrate tests: intervals and the task-graph timeline.
#include <gtest/gtest.h>

#include "sim/interval.hpp"
#include "sim/timeline.hpp"

namespace eccheck::sim {
namespace {

TEST(Interval, NormalizeMergesAndSorts) {
  auto v = normalize({{5, 7}, {1, 2}, {6, 9}, {2, 3}, {10, 10}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], (TimeInterval{1, 3}));
  EXPECT_EQ(v[1], (TimeInterval{5, 9}));
}

TEST(Interval, OverlapWithCalendar) {
  auto cal = normalize({{1, 3}, {5, 8}});
  EXPECT_DOUBLE_EQ(overlap_with({0, 10}, cal), 5.0);
  EXPECT_DOUBLE_EQ(overlap_with({2, 6}, cal), 2.0);
  EXPECT_DOUBLE_EQ(overlap_with({3, 5}, cal), 0.0);
}

TEST(Interval, GapsWithinHorizon) {
  auto busy = normalize({{2, 4}, {6, 7}});
  auto gaps = gaps_of(busy, 0, 10);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (TimeInterval{0, 2}));
  EXPECT_EQ(gaps[1], (TimeInterval{4, 6}));
  EXPECT_EQ(gaps[2], (TimeInterval{7, 10}));
  auto big = gaps_of(busy, 0, 10, 2.5);
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0], (TimeInterval{7, 10}));
}

TEST(Timeline, FifoOnSingleResource) {
  Timeline tl;
  auto r = tl.add_resource("nic");
  auto t1 = tl.add_task("a", r, 2.0, {});
  auto t2 = tl.add_task("b", r, 3.0, {});
  EXPECT_DOUBLE_EQ(tl.finish_time(t1), 2.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(t2), 5.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 5.0);
}

TEST(Timeline, DependenciesDelayStart) {
  Timeline tl;
  auto r1 = tl.add_resource("a");
  auto r2 = tl.add_resource("b");
  auto t1 = tl.add_task("x", r1, 4.0, {});
  auto t2 = tl.add_task("y", r2, 1.0, {t1});
  EXPECT_DOUBLE_EQ(tl.task(t2).start, 4.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(t2), 5.0);
}

TEST(Timeline, MultiResourceOccupiesBoth) {
  Timeline tl;
  auto tx = tl.add_resource("tx");
  auto rx = tl.add_resource("rx");
  auto t = tl.add_task("send", {tx, rx}, 2.0, {});
  EXPECT_DOUBLE_EQ(tl.finish_time(t), 2.0);
  // Both resources are busy until 2.0.
  auto t2 = tl.add_task("next_tx", tx, 1.0, {});
  auto t3 = tl.add_task("next_rx", rx, 1.0, {});
  EXPECT_DOUBLE_EQ(tl.task(t2).start, 2.0);
  EXPECT_DOUBLE_EQ(tl.task(t3).start, 2.0);
}

TEST(Timeline, ParallelResourcesOverlap) {
  Timeline tl;
  auto a = tl.add_resource("a");
  auto b = tl.add_resource("b");
  auto t1 = tl.add_task("x", a, 5.0, {});
  auto t2 = tl.add_task("y", b, 5.0, {});
  EXPECT_DOUBLE_EQ(tl.finish_time(t1), 5.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(t2), 5.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 5.0);
}

TEST(Timeline, NoResourceTaskIsPureDelay) {
  Timeline tl;
  auto r = tl.add_resource("r");
  auto t1 = tl.add_task("work", r, 3.0, {});
  auto barrier = tl.add_task("barrier", kNoResource, 0.0, {t1});
  EXPECT_DOUBLE_EQ(tl.finish_time(barrier), 3.0);
  auto delay = tl.add_task("delay", kNoResource, 2.0, {barrier});
  EXPECT_DOUBLE_EQ(tl.finish_time(delay), 5.0);
}

TEST(Timeline, NotBeforeRespected) {
  Timeline tl;
  auto r = tl.add_resource("r");
  TaskOptions opts;
  opts.not_before = 7.5;
  auto t = tl.add_task("late", r, 1.0, {}, opts);
  EXPECT_DOUBLE_EQ(tl.task(t).start, 7.5);
}

TEST(Timeline, IdleOnlyPacksIntoGaps) {
  Timeline tl;
  auto r = tl.add_resource("nic");
  tl.reserve(r, 1.0, 2.0);
  tl.reserve(r, 3.0, 4.0);
  TaskOptions idle;
  idle.idle_only = true;
  // 1.5s of work: [0,1) gap gives 1.0, [2,3) gap gives remaining 0.5.
  auto t = tl.add_task("ckpt", r, 1.5, {}, idle);
  const auto& task = tl.task(t);
  ASSERT_EQ(task.segments.size(), 2u);
  EXPECT_EQ(task.segments[0], (TimeInterval{0.0, 1.0}));
  EXPECT_EQ(task.segments[1], (TimeInterval{2.0, 2.5}));
  EXPECT_DOUBLE_EQ(task.finish, 2.5);
  EXPECT_DOUBLE_EQ(task.reserved_overlap, 0.0);
  EXPECT_DOUBLE_EQ(tl.reserved_overlap(r), 0.0);
}

TEST(Timeline, IdleOnlyStartsInsideBusyWindowJumpsOut) {
  Timeline tl;
  auto r = tl.add_resource("nic");
  tl.reserve(r, 0.0, 5.0);
  TaskOptions idle;
  idle.idle_only = true;
  auto t = tl.add_task("ckpt", r, 1.0, {}, idle);
  EXPECT_DOUBLE_EQ(tl.task(t).start, 5.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(t), 6.0);
}

TEST(Timeline, NonIdleTaskReportsInterference) {
  Timeline tl;
  auto r = tl.add_resource("nic");
  tl.reserve(r, 1.0, 3.0);
  auto t = tl.add_task("rude", r, 4.0, {});
  EXPECT_DOUBLE_EQ(tl.task(t).reserved_overlap, 2.0);
  EXPECT_DOUBLE_EQ(tl.reserved_overlap(r), 2.0);
}

TEST(Timeline, IdleOnlyMergedCalendarsAcrossResources) {
  Timeline tl;
  auto tx = tl.add_resource("tx");
  auto rx = tl.add_resource("rx");
  tl.reserve(tx, 0.0, 1.0);
  tl.reserve(rx, 1.5, 2.5);
  TaskOptions idle;
  idle.idle_only = true;
  auto t = tl.add_task("send", {tx, rx}, 1.0, {}, idle);
  // gap [1.0, 1.5) gives 0.5; remainder after 2.5.
  const auto& task = tl.task(t);
  ASSERT_EQ(task.segments.size(), 2u);
  EXPECT_EQ(task.segments[0], (TimeInterval{1.0, 1.5}));
  EXPECT_EQ(task.segments[1], (TimeInterval{2.5, 3.0}));
}

TEST(Timeline, IdleOnlyRespectsResourceAvailability) {
  Timeline tl;
  auto r = tl.add_resource("nic");
  tl.add_task("first", r, 2.0, {});
  TaskOptions idle;
  idle.idle_only = true;
  auto t = tl.add_task("second", r, 1.0, {}, idle);
  EXPECT_DOUBLE_EQ(tl.task(t).start, 2.0);
}

TEST(Timeline, ZeroDurationTask) {
  Timeline tl;
  auto r = tl.add_resource("r");
  auto t0 = tl.add_task("work", r, 1.0, {});
  auto t = tl.add_task("marker", r, 0.0, {t0});
  EXPECT_DOUBLE_EQ(tl.finish_time(t), 1.0);
  EXPECT_TRUE(tl.task(t).segments.empty());
}

TEST(Timeline, ResourceNamesAndAvailability) {
  Timeline tl;
  auto r = tl.add_resource("node0/tx");
  EXPECT_EQ(tl.resource_name(r), "node0/tx");
  tl.add_task("t", r, 1.5, {});
  EXPECT_DOUBLE_EQ(tl.resource_available(r), 1.5);
}

}  // namespace
}  // namespace eccheck::sim
