// Test-only JSON helpers shared by the observability and tracing tests.
//
// JsonChecker is a minimal RFC 8259 syntax checker — enough to prove the
// exporters emit loadable documents without pulling in a parser dependency.
// (The runtime obs::JsonValue parser is itself under test elsewhere, so the
// tests deliberately keep an independent implementation.)
#pragma once

#include <cctype>
#include <cstring>
#include <set>
#include <string>

namespace eccheck::testutil {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip();
    if (!value()) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip();
      if (!string()) return false;
      skip();
      if (peek() != ':') return false;
      ++pos_;
      skip();
      if (!value()) return false;
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip();
      if (!value()) return false;
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline std::size_t count_occurrences(const std::string& hay,
                                     const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t p = hay.find(pat); p != std::string::npos;
       p = hay.find(pat, p + pat.size()))
    ++n;
  return n;
}

/// Distinct values of `"name":"<value>"` in a serialized trace.
inline std::set<std::string> trace_names(const std::string& json) {
  std::set<std::string> names;
  const std::string pat = "\"name\":\"";
  for (std::size_t p = json.find(pat); p != std::string::npos;
       p = json.find(pat, p + 1)) {
    const std::size_t start = p + pat.size();
    const std::size_t end = json.find('"', start);
    if (end != std::string::npos) names.insert(json.substr(start, end - start));
  }
  return names;
}

}  // namespace eccheck::testutil
