// Numeric training substrate: half-float conversion laws, Adam step
// determinism, and the gold-standard checkpoint property — training through
// a failure + recovery produces bit-identical state to an uninterrupted run.
#include <gtest/gtest.h>

#include <cmath>

#include "core/session.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "dnn/half.hpp"
#include "dnn/train_step.hpp"

namespace eccheck {
namespace {

using dnn::float_to_half;
using dnn::half_to_float;

TEST(Half, RoundTripAllHalfValues) {
  // Every finite half value must survive h -> f -> h exactly.
  for (std::uint32_t h = 0; h <= 0xffff; ++h) {
    const auto hu = static_cast<std::uint16_t>(h);
    const std::uint32_t exp = (hu >> 10) & 0x1f;
    const std::uint32_t mant = hu & 0x3ff;
    if (exp == 0x1f && mant != 0) continue;  // NaN payloads may differ
    EXPECT_EQ(float_to_half(half_to_float(hu)), hu) << "h=" << h;
  }
}

TEST(Half, KnownValues) {
  EXPECT_EQ(float_to_half(0.0f), 0x0000);
  EXPECT_EQ(float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half(1.0f), 0x3c00);
  EXPECT_EQ(float_to_half(-2.0f), 0xc000);
  EXPECT_EQ(float_to_half(65504.0f), 0x7bff);  // max finite half
  EXPECT_EQ(float_to_half(65536.0f), 0x7c00);  // overflow -> inf
  EXPECT_EQ(float_to_half(1e-8f), 0x0000);     // underflow -> zero
  EXPECT_FLOAT_EQ(half_to_float(0x3555), 0.33325195f);  // ~1/3
}

TEST(Half, SubnormalsExact) {
  // Smallest positive subnormal: 2^-24.
  EXPECT_EQ(float_to_half(std::ldexp(1.0f, -24)), 0x0001);
  EXPECT_FLOAT_EQ(half_to_float(0x0001), std::ldexp(1.0f, -24));
  // Largest subnormal: (1023/1024) * 2^-14.
  EXPECT_FLOAT_EQ(half_to_float(0x03ff), 1023.0f / 1024.0f / 16384.0f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
  // ties round to the even mantissa (1.0).
  EXPECT_EQ(float_to_half(1.0f + std::ldexp(1.0f, -11)), 0x3c00);
  // Slightly above the tie rounds up.
  EXPECT_EQ(float_to_half(1.0f + std::ldexp(1.0f, -11) * 1.01f), 0x3c01);
}

TEST(Half, InfinityAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(float_to_half(inf), 0x7c00);
  EXPECT_EQ(float_to_half(-inf), 0xfc00);
  EXPECT_TRUE(std::isinf(half_to_float(0x7c00)));
  EXPECT_TRUE(std::isnan(half_to_float(0x7e00)));
  EXPECT_NE(float_to_half(std::nanf("")) & 0x3ff, 0);
}

// --- training steps ---------------------------------------------------------

dnn::CheckpointGenConfig gen_config() {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1, 4, "train");
  cfg.model.vocab = 128;
  cfg.parallelism = {2, 2, 1};
  cfg.seed = 5;
  cfg.iteration = 0;
  return cfg;
}

std::vector<dnn::StateDict> fresh_shards() {
  auto shards = dnn::make_sharded_checkpoint(gen_config());
  for (std::size_t w = 0; w < shards.size(); ++w)
    dnn::sanitize_for_training(shards[w], 1000 + w);
  return shards;
}

TEST(TrainStep, Deterministic) {
  auto a = fresh_shards();
  auto b = fresh_shards();
  for (int i = 0; i < 3; ++i) {
    dnn::train_step_all(a, 42);
    dnn::train_step_all(b, 42);
  }
  for (std::size_t w = 0; w < a.size(); ++w)
    EXPECT_EQ(a[w].digest(), b[w].digest()) << "worker " << w;
}

TEST(TrainStep, ChangesWeightsAndIteration) {
  auto shards = fresh_shards();
  auto before = shards[0].digest();
  dnn::train_step_all(shards, 42);
  EXPECT_NE(shards[0].digest(), before);
  EXPECT_EQ(std::get<std::int64_t>(shards[0].metadata().at("iteration")), 1);
  // Weights stay finite after sanitisation.
  for (const auto& e : shards[0].tensors()) {
    if (e.key.rfind("model.", 0) != 0 || e.tensor.dtype() != dnn::DType::kF16)
      continue;
    for (std::size_t i = 0; i < std::min<std::size_t>(e.tensor.numel(), 64);
         ++i) {
      std::uint16_t h;
      std::memcpy(&h, e.tensor.bytes().data() + i * 2, 2);
      EXPECT_TRUE(std::isfinite(half_to_float(h))) << e.key << " " << i;
    }
  }
}

TEST(TrainStep, DifferentSeedsDiverge) {
  auto a = fresh_shards();
  auto b = fresh_shards();
  dnn::train_step_all(a, 1);
  dnn::train_step_all(b, 2);
  EXPECT_NE(a[0].digest(), b[0].digest());
}

TEST(TrainStep, GoldStandardFailureEquivalence) {
  // Reference: 10 uninterrupted steps.
  auto reference = fresh_shards();
  for (int i = 0; i < 10; ++i) dnn::train_step_all(reference, 42);

  // Interrupted run: checkpoint at step 5, lose two nodes, recover, finish.
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 4;
  ccfg.gpus_per_node = 1;
  cluster::VirtualCluster cluster(ccfg);
  auto gen = gen_config();
  core::SessionConfig scfg;
  scfg.ec.k = 2;
  scfg.ec.m = 2;
  scfg.ec.packet_size = kib(8);
  auto session =
      core::Session::initialize(cluster, gen.model, gen.parallelism, scfg);

  auto live = fresh_shards();
  for (int i = 0; i < 5; ++i) dnn::train_step_all(live, 42);
  session.save(live);

  for (int i = 5; i < 8; ++i) dnn::train_step_all(live, 42);
  // Crash: in-GPU state gone, two hosts gone with their memory.
  live.clear();
  cluster.kill(0);
  cluster.kill(3);
  cluster.replace(0);
  cluster.replace(3);

  auto result = session.load(live);
  ASSERT_TRUE(result.report.success) << result.report.detail;
  EXPECT_EQ(std::get<std::int64_t>(live[0].metadata().at("iteration")), 5);

  for (int i = 5; i < 10; ++i) dnn::train_step_all(live, 42);

  ASSERT_EQ(live.size(), reference.size());
  for (std::size_t w = 0; w < live.size(); ++w)
    EXPECT_EQ(live[w].digest(), reference[w].digest())
        << "worker " << w << " diverged after recovery";
}

TEST(TrainStep, DpReplicasStayIdentical) {
  auto cfg = gen_config();
  cfg.parallelism = {2, 2, 2};  // two dp replicas
  auto shards = dnn::make_sharded_checkpoint(cfg);
  for (std::size_t w = 0; w < shards.size(); ++w) {
    // Same sanitisation seed for dp counterparts.
    auto rc = dnn::rank_coords(cfg.parallelism, static_cast<int>(w));
    rc.dp_rank = 0;
    dnn::sanitize_for_training(
        shards[w],
        9000 + static_cast<std::uint64_t>(
                   dnn::worker_of(cfg.parallelism, rc)));
  }
  for (int i = 0; i < 3; ++i) dnn::train_step_all(shards, 7);
  // Model tensors of dp counterparts stay byte-identical.
  int a = dnn::worker_of(cfg.parallelism, {1, 0, 0});
  int b = dnn::worker_of(cfg.parallelism, {1, 0, 1});
  const auto& sa = shards[static_cast<std::size_t>(a)];
  const auto& sb = shards[static_cast<std::size_t>(b)];
  for (std::size_t i = 0; i < sa.tensors().size(); ++i) {
    const auto& ta = sa.tensors()[i];
    if (ta.key.rfind("rng.", 0) == 0) continue;
    EXPECT_EQ(0, std::memcmp(ta.tensor.bytes().data(),
                             sb.tensors()[i].tensor.bytes().data(),
                             ta.tensor.nbytes()))
        << ta.key;
  }
}

}  // namespace
}  // namespace eccheck
