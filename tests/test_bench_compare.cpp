// Baseline / regression comparison tests (bench/compare.hpp): JSON-lines
// loading, metric flattening + classification, update→check round trip, and
// the exact-vs-time failure semantics the CI perf-smoke job relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench/compare.hpp"
#include "bench/harness.hpp"
#include "tests/json_checker.hpp"

namespace eccheck {
namespace {

namespace fs = std::filesystem;
using namespace bench;

class BenchCompareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("eccheck_bc_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string write_jsonl(const std::string& name, const std::string& text) {
    const std::string path = (dir_ / name).string();
    std::ofstream f(path);
    f << text;
    return path;
  }

  fs::path dir_;
};

TEST(MetricClassification, ExactVsTime) {
  EXPECT_TRUE(metric_is_exact("network_bytes"));
  EXPECT_TRUE(metric_is_exact("stats.net.p2p_data.bytes"));
  EXPECT_TRUE(metric_is_exact("stats.cpu.code.count"));
  EXPECT_TRUE(metric_is_exact("success"));
  EXPECT_FALSE(metric_is_exact("total_time_s"));
  EXPECT_FALSE(metric_is_exact("breakdown.step3_encode_pipeline"));
  EXPECT_FALSE(metric_is_exact("bytes_per_second"));  // a rate, not a count
  EXPECT_FALSE(metric_is_exact("real_time_s"));
}

TEST_F(BenchCompareTest, LoadJsonlFlattensNestedReports) {
  const std::string path = write_jsonl(
      "run.jsonl",
      R"({"bench":"b","label":"l","report":{"total_time_s":1.5,"success":true,)"
      R"("breakdown":{"step1":0.25},"stats":{"net.x.bytes":128}}})"
      "\n"
      "not json at all\n"  // must be skipped, not fatal
      R"({"bench":"b","label":"l2","report":{"total_time_s":2.0}})"
      "\n");
  BenchMap data;
  ASSERT_TRUE(load_jsonl(path, data));
  ASSERT_EQ(data.size(), 1u);
  ASSERT_EQ(data["b"].size(), 2u);
  const MetricMap& m = data["b"]["l"];
  EXPECT_DOUBLE_EQ(m.at("total_time_s"), 1.5);
  EXPECT_DOUBLE_EQ(m.at("success"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("breakdown.step1"), 0.25);
  EXPECT_DOUBLE_EQ(m.at("stats.net.x.bytes"), 128.0);
}

TEST_F(BenchCompareTest, UpdateThenCheckPasses) {
  BenchMap data;
  data["fig"]["model-a"] = {{"total_time_s", 1.25},
                            {"network_bytes", 1048576.0}};
  ASSERT_TRUE(write_baselines(dir_.string(), data));

  // The baseline file itself is valid JSON.
  std::ifstream f(baseline_path(dir_.string(), "fig"));
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_TRUE(testutil::JsonChecker(ss.str()).valid()) << ss.str();

  std::vector<std::string> missing;
  BenchMap loaded = load_baselines(dir_.string(), {"fig"}, &missing);
  EXPECT_TRUE(missing.empty());
  CompareReport rep = compare(loaded, data);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.passed, 2u);
}

TEST_F(BenchCompareTest, PerturbedExactByteCounterFails) {
  BenchMap base;
  base["fig"]["model-a"] = {{"total_time_s", 1.25},
                            {"network_bytes", 1048576.0}};
  BenchMap cur = base;
  cur["fig"]["model-a"]["network_bytes"] = 1048577.0;  // off by one byte
  CompareReport rep = compare(base, cur);
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.failed, 1u);
  bool found = false;
  for (const auto& row : rep.rows)
    if (row.status == CompareRow::Status::kFail) {
      EXPECT_EQ(row.metric, "network_bytes");
      found = true;
    }
  EXPECT_TRUE(found);
  // warn-only-time must NOT rescue an exact metric.
  CompareOptions warn_only;
  warn_only.warn_only_time = true;
  EXPECT_FALSE(compare(base, cur, warn_only).ok());
}

TEST_F(BenchCompareTest, TimeDriftRespectsThresholdAndWarnOnly) {
  BenchMap base;
  base["fig"]["model-a"] = {{"total_time_s", 1.0}};
  BenchMap cur;
  cur["fig"]["model-a"] = {{"total_time_s", 1.2}};

  CompareOptions opt;
  opt.time_threshold = 0.25;
  EXPECT_TRUE(compare(base, cur, opt).ok());  // 20% < 25%

  opt.time_threshold = 0.10;
  CompareReport strict = compare(base, cur, opt);
  EXPECT_FALSE(strict.ok());  // 20% > 10% → fail

  opt.warn_only_time = true;
  CompareReport lax = compare(base, cur, opt);
  EXPECT_TRUE(lax.ok());  // demoted to warning
  EXPECT_EQ(lax.warned, 1u);
}

TEST_F(BenchCompareTest, MissingMetricOrLabelFails) {
  BenchMap base;
  base["fig"]["model-a"] = {{"total_time_s", 1.0}, {"network_bytes", 10.0}};
  base["fig"]["model-b"] = {{"total_time_s", 2.0}};

  BenchMap cur;
  cur["fig"]["model-a"] = {{"total_time_s", 1.0}};  // network_bytes gone
  CompareReport rep = compare(base, cur);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.failed, 2u);  // missing metric + missing label model-b
}

TEST_F(BenchCompareTest, NewLabelsWarnButDoNotFail) {
  BenchMap base;
  base["fig"]["model-a"] = {{"total_time_s", 1.0}};
  BenchMap cur = base;
  cur["fig"]["model-new"] = {{"total_time_s", 9.9}};
  CompareReport rep = compare(base, cur);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.warned, 1u);
}

TEST_F(BenchCompareTest, BaselineRoundTripIsBitExact) {
  // json_number's max_digits10 formatting means write→load→compare is exact
  // even for awkward doubles.
  BenchMap data;
  data["b"]["l"] = {{"t", 4.9809042337804672e-07},
                    {"u", 1.0 / 3.0},
                    {"v_bytes", 502232980140.0}};
  ASSERT_TRUE(write_baselines(dir_.string(), data));
  std::vector<std::string> missing;
  BenchMap loaded = load_baselines(dir_.string(), {"b"}, &missing);
  ASSERT_TRUE(missing.empty());
  EXPECT_EQ(loaded["b"]["l"].at("t"), data["b"]["l"].at("t"));
  EXPECT_EQ(loaded["b"]["l"].at("u"), data["b"]["l"].at("u"));
  CompareReport rep = compare(loaded, data);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.failed + rep.warned, 0u);
}

}  // namespace
}  // namespace eccheck
