// Ablation (§IV-A): XOR-only encoding cost — naive bitmatrix schedule vs
// greedy common-subexpression-optimized program, by code shape.
#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "common/rng.hpp"
#include "ec/cauchy.hpp"
#include "ec/xor_program.hpp"

using namespace eccheck;

namespace {

double throughput_gibps(const ec::XorProgram& prog, int k, int m,
                        std::size_t P) {
  std::vector<Buffer> data;
  for (int i = 0; i < k; ++i) {
    data.emplace_back(P, Buffer::Init::kUninitialized);
    fill_random(data.back().span(), static_cast<std::uint64_t>(i));
  }
  std::vector<Buffer> parity;
  for (int r = 0; r < m; ++r) parity.emplace_back(P);
  std::vector<ByteSpan> in;
  for (auto& d : data) in.push_back(d.span());
  std::vector<MutableByteSpan> out;
  for (auto& p : parity) out.push_back(p.span());

  using Clock = std::chrono::steady_clock;
  const int reps = 20;
  auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) run_xor_program(prog, in, out);
  double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(P) * k * reps / dt / (1 << 30);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: XOR schedule optimization (bitmatrix CSE)",
      "XORs per stripe and measured encode throughput, 1 MiB packets");

  std::printf("%-14s %-12s %-12s %-12s %-10s %-12s %-12s\n", "code (k,m,w)",
              "naive XORs", "opt XORs", "mem passes", "saved", "naive GiB/s",
              "opt GiB/s");
  const std::size_t P = 1 << 20;
  for (auto [k, m, w] : std::vector<std::array<int, 3>>{
           {2, 2, 8}, {4, 2, 8}, {6, 2, 8}, {6, 3, 8}, {8, 4, 8}, {4, 4, 4}}) {
    const auto& f = gf::Field::get(w);
    ec::BitMatrix bm =
        ec::expand_to_bitmatrix(ec::normalized_cauchy_matrix(k, m, f));
    auto naive = ec::naive_xor_program(bm, k, m, w);
    auto opt = ec::optimize_xor_program(bm, k, m, w);
    std::printf("%-14s %-12d %-12d %d->%-8d %-10.1f%% %-12.2f %-12.2f\n",
                ("(" + std::to_string(k) + "," + std::to_string(m) + "," +
                 std::to_string(w) + ")")
                    .c_str(),
                naive.xor_count(), opt.xor_count(), naive.memory_passes(),
                opt.memory_passes(),
                100.0 * (naive.memory_passes() - opt.memory_passes()) /
                    naive.memory_passes(),
                throughput_gibps(naive, k, m, P),
                throughput_gibps(opt, k, m, P));
  }
  std::printf(
      "\nShape: factoring pairs that recur >= 3 times cuts both XORs and "
      "memory passes; throughput follows passes (the kernels are "
      "memory-bound), so only genuinely shared subexpressions help.\n");
  return 0;
}
