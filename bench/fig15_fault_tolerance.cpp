// Fig. 15 — fault-tolerance capacity of base3 vs ECCheck under identical
// redundancy (k = m = n/2), growing cluster size.
#include <cstdio>

#include "analysis/recovery_rate.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header(
      "Fig. 15: recovery probability at identical redundancy (k = m = n/2)",
      "base3 = GEMINI replication with groups of 2; ECCheck tolerates any "
      "n/2 concurrent failures");

  for (int n : {4, 8, 16, 32}) {
    std::printf("\n-- n = %d nodes --\n", n);
    std::printf("%-10s %-16s %-16s %-10s\n", "p(fail)", "base3", "eccheck",
                "gap");
    for (double p : {0.01, 0.02, 0.05, 0.1, 0.2, 0.3}) {
      auto c = analysis::compare_at_equal_redundancy(n, p);
      std::printf("%-10.2f %-16.6f %-16.6f %+-10.6f\n", p, c.replication_rate,
                  c.eccheck_rate, c.eccheck_rate - c.replication_rate);
    }
  }
  std::printf(
      "\nPaper shape: ECCheck dominates at every p, and the advantage grows "
      "with n.\n");
  return 0;
}
