// Fig. 14 — checkpointing-time scalability from 4 to 32 GPUs.
//
// As in the paper: GPT-2 with hidden 1024, layers scaled with the GPU count
// (16 layers on 4 GPUs → 128 on 32) so per-GPU state stays constant;
// 4 nodes, k = m = 2, GPUs per node grow 1 → 8.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/grouped_engine.hpp"

int main() {
  using namespace eccheck;
  bench::print_header("Fig. 14: checkpointing time, 4 -> 32 GPUs",
                      "GPT-2 hidden 1024; per-GPU shard held constant; "
                      "n=4 nodes, k=m=2");

  std::printf("%-8s %-10s %-12s %-12s %-12s %-12s\n", "GPUs", "layers",
              "base1", "base2", "base3", "eccheck");

  for (int g : {1, 2, 4, 8}) {
    const int gpus = 4 * g;
    const int layers = 16 * g;
    auto model = dnn::gpt2_hidden1024(layers);
    dnn::ParallelismSpec par{g, 4, 1};
    auto workload = bench::make_scaled_workload(model, par, 256);

    double t[4];
    auto engines = bench::make_engines();
    int i = 0;
    for (auto* e : engines.all()) {
      auto cfg = bench::testbed_config(4, g);
      cfg.size_scale = workload.size_scale;
      cluster::VirtualCluster cluster(cfg);
      t[i++] = e->save(cluster, workload.shards, 1).total_time;
    }
    std::printf("%-8d %-10d %-12s %-12s %-12s %-12s\n", gpus, layers,
                human_seconds(t[0]).c_str(), human_seconds(t[1]).c_str(),
                human_seconds(t[2]).c_str(), human_seconds(t[3]).c_str());
  }
  std::printf(
      "\nPaper shape: base1/base2 grow linearly with GPU count (fixed "
      "aggregate storage bandwidth); base3/eccheck stay ~flat (fully "
      "distributed, per-device volume = m*s).\n");

  // §VI extension: scale-out with the group-based mode — adding whole
  // 4-node groups keeps checkpoint time constant.
  std::printf("\n-- group-based scale-out (4-node groups, k=m=2, g=2) --\n");
  std::printf("%-8s %-8s %-14s\n", "nodes", "groups", "eccheck-grouped");
  for (int groups : {1, 2, 4, 8}) {
    const int nodes = 4 * groups;
    auto model = dnn::gpt2_hidden1024(16 * nodes / 4);
    dnn::ParallelismSpec gpar{2, nodes * 2 / 2, 1};
    (void)gpar;
    dnn::CheckpointGenConfig gen;
    gen.model = model.scaled_down(4.0);
    gen.parallelism = {1, nodes * 2, 1};
    auto shards = dnn::make_sharded_checkpoint(gen);

    auto cfg = bench::testbed_config(nodes, 2);
    cfg.size_scale = static_cast<double>(model.param_count()) /
                     static_cast<double>(gen.model.param_count());
    cluster::VirtualCluster cluster(cfg);
    core::GroupedConfig gc;
    gc.group_size = 4;
    gc.per_group.k = 2;
    gc.per_group.m = 2;
    gc.per_group.packet_size = kib(128);
    core::GroupedECCheckEngine engine(gc);
    auto rep = engine.save(cluster, shards, 1);
    std::printf("%-8d %-8d %-14s\n", nodes, groups,
                human_seconds(rep.total_time).c_str());
  }
  std::printf("groups run on disjoint nodes and overlap: flat scaling.\n");
  return 0;
}
