// Microbenchmarks (§IV-A): Cauchy Reed-Solomon encode/decode throughput by
// code shape and kernel mode, plus thread-pool encode scaling.
#include <benchmark/benchmark.h>

#include "bench/gbench_json.hpp"
#include "common/rng.hpp"
#include "ec/crs_codec.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace eccheck;
using ec::CrsCodec;
using ec::KernelMode;

std::vector<Buffer> make_packets(int n, std::size_t size) {
  std::vector<Buffer> v;
  for (int i = 0; i < n; ++i) {
    v.emplace_back(size, Buffer::Init::kUninitialized);
    fill_random(v.back().span(), static_cast<std::uint64_t>(i) + 1);
  }
  return v;
}

void BM_CrsEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const bool bitmatrix = state.range(2) != 0;
  const std::size_t P = static_cast<std::size_t>(state.range(3));
  CrsCodec codec(k, m, 8,
                 bitmatrix ? KernelMode::kXorBitmatrix : KernelMode::kGfTable);
  auto data = make_packets(k, P);
  auto parity = make_packets(m, P);
  std::vector<ByteSpan> in;
  for (auto& d : data) in.push_back(d.span());
  std::vector<MutableByteSpan> out;
  for (auto& p : parity) out.push_back(p.span());

  for (auto _ : state) {
    codec.encode(in, out);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(P) * k);
  state.SetLabel(bitmatrix ? "xor-bitmatrix" : "gf-table");
}
BENCHMARK(BM_CrsEncode)
    ->Args({2, 2, 0, 1 << 20})
    ->Args({2, 2, 1, 1 << 20})
    ->Args({4, 2, 0, 1 << 20})
    ->Args({4, 2, 1, 1 << 20})
    ->Args({8, 4, 0, 1 << 20})
    ->Args({8, 4, 1, 1 << 20});

void BM_CrsDecode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const std::size_t P = 1 << 20;
  CrsCodec codec(k, m, 8);
  auto data = make_packets(k, P);
  auto parity = make_packets(m, P);
  {
    std::vector<ByteSpan> in;
    for (auto& d : data) in.push_back(d.span());
    std::vector<MutableByteSpan> out;
    for (auto& p : parity) out.push_back(p.span());
    codec.encode(in, out);
  }
  // Worst case: all survivors are parity rows (m >= k assumed in args).
  std::vector<int> rows;
  std::vector<ByteSpan> chunks;
  for (int r = 0; r < k; ++r) {
    rows.push_back(k + r);
    chunks.push_back(parity[static_cast<std::size_t>(r)].span());
  }
  auto rec = make_packets(k, P);
  std::vector<MutableByteSpan> out;
  for (auto& r : rec) out.push_back(r.span());

  for (auto _ : state) {
    codec.decode(rows, chunks, out);
    benchmark::DoNotOptimize(rec[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(P) * k);
}
BENCHMARK(BM_CrsDecode)->Args({2, 2})->Args({4, 4});

/// §IV-A thread-pool technique: one encode split into per-slice sub-tasks.
void BM_ThreadPoolEncode(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const int k = 4, m = 2;
  const std::size_t P = 4 << 20;
  const std::size_t kSlice = 256 << 10;
  CrsCodec codec(k, m, 8);
  auto data = make_packets(k, P);
  auto parity = make_packets(m, P);
  runtime::ThreadPool pool(threads);

  for (auto _ : state) {
    pool.parallel_for(P / kSlice, [&](std::size_t s) {
      const std::size_t off = s * kSlice;
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < k; ++c) {
          codec.encode_partial(
              k + r, c, data[static_cast<std::size_t>(c)].subspan(off, kSlice),
              parity[static_cast<std::size_t>(r)].subspan(off, kSlice),
              /*accumulate=*/c != 0);
        }
      }
    });
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(P) * k);
}
BENCHMARK(BM_ThreadPoolEncode)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return eccheck::bench::gbench_main("micro_crs", argc, argv);
}
