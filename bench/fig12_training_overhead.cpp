// Fig. 12 — average training iteration time vs checkpointing frequency for
// GPT-2 5.3B (4 nodes × 4 GPUs).
//
// Per checkpoint the engine imposes: its stall (synchronous part), back-
// pressure when the asynchronous tail exceeds the checkpoint interval, and
// NIC interference with training traffic (zero for ECCheck's idle-aware
// scheduling).
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header(
      "Fig. 12: average iteration time vs checkpoint frequency",
      "GPT-2 5.3B, tp=4 pp=4; frequency = checkpoints per N iterations");

  dnn::ParallelismSpec par{4, 4, 1};
  const auto model = dnn::table1_models()[1];  // GPT-2 5.3B
  auto workload = bench::make_scaled_workload(model, par);

  // Baseline iteration time from the training profile.
  auto train = trainsim::estimate_workload(model, par);
  auto prof = trainsim::simulate_iteration(train, par.pipeline_parallel,
                                           bench::testbed_config().nic_bandwidth);
  const Seconds t_iter = prof.iteration_time;
  std::printf("baseline iteration time: %s\n\n", human_seconds(t_iter).c_str());

  std::printf("%-22s %-12s %-12s %-12s %-12s\n", "ckpt interval (iters)",
              "base1", "base2", "base3", "eccheck");

  for (int interval : {200, 100, 50, 20, 10, 5}) {
    double avg[4];
    auto engines = bench::make_engines();
    int i = 0;
    for (auto* e : engines.all()) {
      auto cfg = bench::testbed_config();
      cfg.size_scale = workload.size_scale;
      cluster::VirtualCluster cluster(cfg);
      auto tp = bench::attach_training_calendar(cluster, model, par, 400);
      (void)tp;
      auto rep = e->save(cluster, workload.shards, 1);
      Seconds interference = 0;
      for (int n = 0; n < cluster.num_nodes(); ++n)
        interference += cluster.nic_interference(n);
      // Amortized per-iteration cost: stall + backpressure + interference.
      Seconds window = interval * t_iter;
      Seconds backpressure = std::max(0.0, rep.total_time - window);
      avg[i++] = t_iter + (rep.stall_time + backpressure + interference) /
                              interval;
    }
    std::printf("%-22d %-12s %-12s %-12s %-12s\n", interval,
                human_seconds(avg[0]).c_str(), human_seconds(avg[1]).c_str(),
                human_seconds(avg[2]).c_str(), human_seconds(avg[3]).c_str());
  }
  std::printf(
      "\nPaper shape: base1 pays its full save synchronously; base2 "
      "degrades as the interval shrinks below its persist time; base3 and "
      "eccheck stay near the baseline at every frequency.\n");
  return 0;
}
