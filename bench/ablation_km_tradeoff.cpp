// Ablation: the k/m design space on an 8-node cluster — checkpoint time,
// communication volume, host-memory redundancy, and fault tolerance as the
// parity count m grows (k = n − m).
#include <cstdio>

#include "analysis/recovery_rate.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header(
      "Ablation: choosing k and m (n = 8 nodes x 3 GPUs, GPT-2 1.6B)",
      "more parity -> more failures tolerated, more communication, bigger "
      "chunks per node");

  const int n = 8;
  const int g = 3;  // W = 24: admits k ∈ {2, 3, 4, 6} with k + m = 8
  dnn::ParallelismSpec par{1, n * g, 1};
  const auto model = dnn::table1_models()[0];
  auto workload = bench::make_scaled_workload(model, par);

  std::printf("%-10s %-12s %-14s %-16s %-18s %-20s\n", "(k,m)", "save",
              "resume(1 dn)", "net volume", "chunk/node (xs)",
              "P(recover), p=0.05");
  for (int m = 1; m <= 6; ++m) {
    const int k = n - m;
    if ((n * g) % k != 0) continue;  // W divisible by k
    core::ECCheckConfig ec;
    ec.k = k;
    ec.m = m;
    ec.packet_size = kib(128);
    core::ECCheckEngine engine(ec);

    auto cfg = bench::testbed_config(n, g);
    cfg.size_scale = workload.size_scale;
    cluster::VirtualCluster cluster(cfg);
    auto save = engine.save(cluster, workload.shards, 1);

    auto plan = engine.plan_for(cluster);
    cluster.kill(plan.data_nodes[0]);
    cluster.replace(plan.data_nodes[0]);
    std::vector<dnn::StateDict> out;
    auto load = engine.load(cluster, 1, out);

    std::printf("%-10s %-12s %-14s %-16s %-18.2f %-20.6f\n",
                ("(" + std::to_string(k) + "," + std::to_string(m) + ")")
                    .c_str(),
                human_seconds(save.total_time).c_str(),
                load.success ? human_seconds(load.resume_time).c_str() : "-",
                human_bytes(static_cast<double>(save.network_bytes)).c_str(),
                static_cast<double>(n * g) / k / g,
                analysis::erasure_group_rate(n, m, 0.05));
  }
  std::printf(
      "\nShape: m is the fault-tolerance dial — communication volume (m*s*W)"
      " and per-node chunk size (W/k packets) both grow with it; recovery "
      "rate approaches 1 quickly.\n");
  return 0;
}
