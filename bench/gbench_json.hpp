// Google-Benchmark → BENCH JSON-lines bridge.
//
// BENCHMARK_MAIN() prints a console table and throws the numbers away;
// gbench_main() keeps the table but, when ECCHECK_BENCH_JSON names a path,
// also appends one {"bench":...,"label":...,"report":{...}} record per run —
// the same JSON-lines format the figure benches emit via
// maybe_append_bench_json, so bench_compare can diff micro- and macro-
// benchmarks against checked-in baselines uniformly.
#pragma once

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "obs/json.hpp"

namespace eccheck::bench {

/// ConsoleReporter that mirrors every successful per-iteration run into the
/// JSON-lines file. Aggregates (mean/median/stddev from --benchmark_repetitions)
/// are skipped — baselines hold one record per benchmark instance.
class JsonLinesReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit JsonLinesReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ::benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // Per-iteration times only: the iteration count itself is gbench's
      // auto-tuned stopping decision, pure noise for regression purposes.
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      std::ostringstream os;
      os << "{\"real_time_s\":"
         << obs::json_number(run.real_accumulated_time / iters)
         << ",\"cpu_time_s\":"
         << obs::json_number(run.cpu_accumulated_time / iters);
      // Finalized user counters — includes bytes_per_second/items_per_second.
      for (const auto& [name, counter] : run.counters)
        os << ",\"" << obs::json_escape(name)
           << "\":" << obs::json_number(counter.value);
      os << "}";
      maybe_append_bench_json(bench_name_, run.benchmark_name(), os.str());
    }
  }

 private:
  std::string bench_name_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body:
///   int main(int argc, char** argv) {
///     return eccheck::bench::gbench_main("micro_gf", argc, argv);
///   }
inline int gbench_main(const std::string& bench_name, int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonLinesReporter reporter(bench_name);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace eccheck::bench
