// Microbenchmark: point-to-point RTT over the real-socket transport, A/B
// on TransportOptions::tcp_nodelay. Every eccheck frame exchange ends in a
// tiny CRC-echo ack, so with Nagle enabled (tcp_nodelay=false) the ack can
// sit in the kernel until a delayed-ACK timer fires — on loopback the
// effect is small, but the A/B legs document that the option reaches the
// wire and give a reference point for cross-host deployments. A net_send
// is one full round trip (frame out, ack echoed back), so RTT == one
// iteration. The UDS leg is the no-Nagle baseline.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "bench/gbench_json.hpp"
#include "net/transport.hpp"

namespace {

using namespace eccheck;

net::TransportOptions bench_opts(bool nodelay) {
  net::TransportOptions o;
  o.connect_timeout = net::Millis(1000);
  o.connect_retries = 20;
  o.backoff_base = net::Millis(2);
  o.backoff_max = net::Millis(50);
  o.io_timeout = net::Millis(10000);
  o.tcp_nodelay = nodelay;
  return o;
}

/// A 2-rank transport pair plus a responder thread that answers one
/// net_send per release(); the sender's call blocks on the CRC-echo ack,
/// so the pair is naturally lock-stepped.
class PingPongRig {
 public:
  PingPongRig(bool tcp, bool nodelay) {
    const net::TransportOptions opts = bench_opts(nodelay);
    std::vector<net::Endpoint> eps;
    if (tcp) {
      eps.assign(2, net::Endpoint::tcp("127.0.0.1", 0));
    } else {
      char tmpl[] = "/tmp/eccheck-netbench-XXXXXX";
      dir_ = ::mkdtemp(tmpl) ? tmpl : "/tmp";
      for (int r = 0; r < 2; ++r)
        eps.push_back(net::Endpoint::uds(dir_ + "/r" + std::to_string(r) +
                                         ".sock"));
    }
    for (int r = 0; r < 2; ++r)
      ranks_.push_back(std::make_unique<net::SocketTransport>(r, eps, opts));
    if (tcp) {
      std::vector<net::Endpoint> real;
      for (auto& t : ranks_) real.push_back(t->listen_endpoint());
      for (auto& t : ranks_) t->set_peers(real);
    }
    responder_ = std::thread([this] {
      while (true) {
        rounds_.acquire();
        if (stop_.load(std::memory_order_acquire)) return;
        ranks_[1]->net_send(0, 1, bytes_, "rtt");
      }
    });
  }

  ~PingPongRig() {
    stop_.store(true, std::memory_order_release);
    rounds_.release();
    responder_.join();
    ranks_.clear();
    if (!dir_.empty()) (void)!std::system(("rm -rf " + dir_).c_str());
  }

  void round(std::size_t bytes) {
    bytes_ = bytes;
    rounds_.release();
    ranks_[0]->net_send(0, 1, bytes, "rtt");
  }

 private:
  std::string dir_;
  std::vector<std::unique_ptr<net::SocketTransport>> ranks_;
  std::thread responder_;
  std::counting_semaphore<> rounds_{0};
  std::atomic<bool> stop_{false};
  std::size_t bytes_ = 0;
};

void BM_TcpRoundTrip(benchmark::State& state) {
  const bool nodelay = state.range(0) != 0;
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  PingPongRig rig(/*tcp=*/true, nodelay);
  for (auto _ : state) rig.round(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(nodelay ? "nodelay" : "nagle");
}
BENCHMARK(BM_TcpRoundTrip)
    ->Args({1, 64})
    ->Args({0, 64})
    ->Args({1, 4096})
    ->Args({0, 4096})
    ->Args({1, 1 << 16})
    ->Args({0, 1 << 16})
    ->UseRealTime();

void BM_UdsRoundTrip(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  PingPongRig rig(/*tcp=*/false, /*nodelay=*/true);
  for (auto _ : state) rig.round(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_UdsRoundTrip)->Arg(64)->Arg(4096)->Arg(1 << 16)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return eccheck::bench::gbench_main("micro_transport", argc, argv);
}
