// Microbenchmark: point-to-point RTT over the real-socket transport, A/B
// on TransportOptions::tcp_nodelay. Every eccheck frame exchange ends in a
// tiny CRC-echo ack, so with Nagle enabled (tcp_nodelay=false) the ack can
// sit in the kernel until a delayed-ACK timer fires — on loopback the
// effect is small, but the A/B legs document that the option reaches the
// wire and give a reference point for cross-host deployments. A net_send
// is one full round trip (frame out, ack echoed back), so RTT == one
// iteration. The UDS leg is the no-Nagle baseline.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "bench/gbench_json.hpp"
#include "net/transport.hpp"

namespace {

using namespace eccheck;

net::TransportOptions bench_opts(bool nodelay) {
  net::TransportOptions o;
  o.connect_timeout = net::Millis(1000);
  o.connect_retries = 20;
  o.backoff_base = net::Millis(2);
  o.backoff_max = net::Millis(50);
  o.io_timeout = net::Millis(10000);
  o.tcp_nodelay = nodelay;
  return o;
}

/// A 2-rank transport pair plus a responder thread that answers one
/// net_send per release(); the sender's call blocks on the CRC-echo ack,
/// so the pair is naturally lock-stepped.
class PingPongRig {
 public:
  PingPongRig(bool tcp, bool nodelay) {
    const net::TransportOptions opts = bench_opts(nodelay);
    std::vector<net::Endpoint> eps;
    if (tcp) {
      eps.assign(2, net::Endpoint::tcp("127.0.0.1", 0));
    } else {
      char tmpl[] = "/tmp/eccheck-netbench-XXXXXX";
      dir_ = ::mkdtemp(tmpl) ? tmpl : "/tmp";
      for (int r = 0; r < 2; ++r)
        eps.push_back(net::Endpoint::uds(dir_ + "/r" + std::to_string(r) +
                                         ".sock"));
    }
    for (int r = 0; r < 2; ++r)
      ranks_.push_back(std::make_unique<net::SocketTransport>(r, eps, opts));
    if (tcp) {
      std::vector<net::Endpoint> real;
      for (auto& t : ranks_) real.push_back(t->listen_endpoint());
      for (auto& t : ranks_) t->set_peers(real);
    }
    responder_ = std::thread([this] {
      while (true) {
        rounds_.acquire();
        if (stop_.load(std::memory_order_acquire)) return;
        ranks_[1]->net_send(0, 1, bytes_, "rtt");
      }
    });
  }

  ~PingPongRig() {
    stop_.store(true, std::memory_order_release);
    rounds_.release();
    responder_.join();
    ranks_.clear();
    if (!dir_.empty()) (void)!std::system(("rm -rf " + dir_).c_str());
  }

  void round(std::size_t bytes) {
    bytes_ = bytes;
    rounds_.release();
    ranks_[0]->net_send(0, 1, bytes, "rtt");
  }

 private:
  std::string dir_;
  std::vector<std::unique_ptr<net::SocketTransport>> ranks_;
  std::thread responder_;
  std::counting_semaphore<> rounds_{0};
  std::atomic<bool> stop_{false};
  std::size_t bytes_ = 0;
};

void BM_TcpRoundTrip(benchmark::State& state) {
  const bool nodelay = state.range(0) != 0;
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  PingPongRig rig(/*tcp=*/true, nodelay);
  for (auto _ : state) rig.round(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(nodelay ? "nodelay" : "nagle");
}
BENCHMARK(BM_TcpRoundTrip)
    ->Args({1, 64})
    ->Args({0, 64})
    ->Args({1, 4096})
    ->Args({0, 4096})
    ->Args({1, 1 << 16})
    ->Args({0, 1 << 16})
    ->UseRealTime();

void BM_UdsRoundTrip(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  PingPongRig rig(/*tcp=*/false, /*nodelay=*/true);
  for (auto _ : state) rig.round(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_UdsRoundTrip)->Arg(64)->Arg(4096)->Arg(1 << 16)->UseRealTime();

/// A 2-rank pair moving one batch of back-to-back 64 KiB frames per round
/// (send_buffers), A/B over the ack window: W=1 is stop-and-wait (one RTT
/// per frame), wider windows keep W frames in flight so the acks overlap
/// the next frames' writes. The scatter_gather=false leg at W=1 is the
/// full pre-pipelining data plane, the blocking baseline the scale bench
/// measures against.
class BatchRig {
 public:
  static constexpr int kFrames = 16;
  static constexpr std::size_t kFrameBytes = 64 * 1024;

  BatchRig(int window, bool scatter_gather) {
    net::TransportOptions opts = bench_opts(/*nodelay=*/true);
    opts.ack_window = window;
    opts.scatter_gather = scatter_gather;
    char tmpl[] = "/tmp/eccheck-netbench-XXXXXX";
    dir_ = ::mkdtemp(tmpl) ? tmpl : "/tmp";
    std::vector<net::Endpoint> eps;
    for (int r = 0; r < 2; ++r)
      eps.push_back(net::Endpoint::uds(dir_ + "/r" + std::to_string(r) +
                                       ".sock"));
    for (int r = 0; r < 2; ++r)
      ranks_.push_back(std::make_unique<net::SocketTransport>(r, eps, opts));
    for (int i = 0; i < kFrames; ++i) {
      const std::string key = "frame/" + std::to_string(i);
      ranks_[0]->store(0).put(key,
                              Buffer(kFrameBytes, Buffer::Init::kZeroed));
      pairs_.emplace_back(key, key);
    }
    responder_ = std::thread([this] {
      while (true) {
        rounds_.acquire();
        if (stop_.load(std::memory_order_acquire)) return;
        ranks_[1]->send_buffers(0, 1, pairs_);
      }
    });
  }

  ~BatchRig() {
    stop_.store(true, std::memory_order_release);
    rounds_.release();
    responder_.join();
    ranks_.clear();
    if (!dir_.empty()) (void)!std::system(("rm -rf " + dir_).c_str());
  }

  void batch() {
    rounds_.release();
    ranks_[0]->send_buffers(0, 1, pairs_);  // flushes the window
  }

 private:
  std::string dir_;
  std::vector<std::unique_ptr<net::SocketTransport>> ranks_;
  std::vector<std::pair<std::string, std::string>> pairs_;
  std::thread responder_;
  std::counting_semaphore<> rounds_{0};
  std::atomic<bool> stop_{false};
};

void BM_UdsBatchedFrames(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  const bool scatter_gather = state.range(1) != 0;
  BatchRig rig(window, scatter_gather);
  for (auto _ : state) rig.batch();
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(BatchRig::kFrames * BatchRig::kFrameBytes));
  state.SetLabel("W=" + std::to_string(window) +
                 (scatter_gather ? "/writev" : "/copy"));
}
BENCHMARK(BM_UdsBatchedFrames)
    ->Args({1, 0})  // blocking baseline: stop-and-wait + copy framing
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({16, 1})
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return eccheck::bench::gbench_main("micro_transport", argc, argv);
}
