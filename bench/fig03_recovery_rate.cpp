// Fig. 3 — recovery rate of replication vs erasure coding in a 2000-node
// cluster (500 sections of 4 nodes), as node failure probability grows.
#include <cstdio>

#include "analysis/recovery_rate.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header(
      "Fig. 3: recovery rate, 2000-node cluster (500 groups of 4)",
      "replication = two 2-node replica groups per section (Eqn. 1); "
      "erasure coding = (k=2, m=2) per section (Eqn. 2)");

  std::printf("%-12s %-22s %-22s %-10s\n", "p(fail)", "replication^500",
              "erasure^500", "gap");
  for (double p :
       {0.0, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.1}) {
    double rep = analysis::cluster_rate(analysis::eqn1_replication_rate(p), 500);
    double era = analysis::cluster_rate(analysis::eqn2_erasure_rate(p), 500);
    std::printf("%-12.4f %-22.6f %-22.6f %+-10.6f\n", p, rep, era, era - rep);
  }
  std::printf(
      "\nPaper shape: erasure coding dominates everywhere; the advantage "
      "grows as the failure rate rises.\n");
  return 0;
}
