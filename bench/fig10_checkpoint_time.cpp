// Fig. 10 — checkpointing time for the nine Table-I models across the four
// engines on the 4×4-GPU testbed (tp=4, pp=4, k=m=2).
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header(
      "Fig. 10: checkpointing time (save start → checkpoint durable)",
      "4 nodes x 4 GPUs, tp=4 pp=4, k=m=2; remote storage 5 Gbps aggregate");

  std::printf("%-12s %-12s %-12s %-12s %-12s %-14s %-12s\n", "Model", "base1",
              "base2", "base3", "eccheck", "ec/base3", "base1/ec");

  dnn::ParallelismSpec par{4, 4, 1};
  for (const auto& model : dnn::table1_models()) {
    auto workload = bench::make_scaled_workload(model, par);
    auto engines = bench::make_engines();
    double t[4];
    int i = 0;
    for (auto* e : engines.all()) {
      auto cfg = bench::testbed_config();
      cfg.size_scale = workload.size_scale;
      cluster::VirtualCluster cluster(cfg);
      t[i++] = e->save(cluster, workload.shards, 1).total_time;
    }
    std::printf("%-12s %-12s %-12s %-12s %-12s %-14.2f %-12.1f\n",
                model.label.c_str(), human_seconds(t[0]).c_str(),
                human_seconds(t[1]).c_str(), human_seconds(t[2]).c_str(),
                human_seconds(t[3]).c_str(), t[3] / t[2], t[0] / t[3]);
  }
  std::printf(
      "\nPaper shape: in-memory (base3, eccheck) << remote (base1, base2); "
      "eccheck costs a modest factor over base3 (paper ~1.6x) while "
      "tolerating any 2 concurrent node failures.\n");
  return 0;
}
