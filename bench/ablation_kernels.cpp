// Ablation (§IV-A): end-to-end data-plane cost of the kernel choices —
// GF width, table vs XOR-bitmatrix kernels, and thread-pool size.
//
// Virtual checkpoint time is kernel-independent (the cost model charges a
// calibrated encode bandwidth); what this measures is the *real wall-clock*
// time the engine spends producing the coded bytes, i.e. which kernel you
// would calibrate the cost model with.
#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"

using namespace eccheck;

namespace {

double wall_save_seconds(const core::ECCheckConfig& ec,
                         const std::vector<dnn::StateDict>& shards) {
  auto cfg = bench::testbed_config(4, 2);
  cluster::VirtualCluster cluster(cfg);
  core::ECCheckEngine engine(ec);
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  engine.save(cluster, shards, 1);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: coding kernels (data-plane wall time of one save)",
      "4 nodes x 2 GPUs, ~4 MiB shards, k=m=2; virtual timing unaffected");

  dnn::CheckpointGenConfig gen;
  gen.model = dnn::make_model(dnn::ModelFamily::kGPT2, 256, 4, 8, "kern");
  gen.model.vocab = 2048;
  gen.parallelism = {2, 4, 1};
  auto shards = dnn::make_sharded_checkpoint(gen);
  std::printf("shard size ~%s\n\n",
              human_bytes(static_cast<double>(shards[0].tensor_bytes()))
                  .c_str());

  std::printf("%-28s %-12s\n", "variant", "wall time");
  struct Variant {
    const char* name;
    int w;
    ec::KernelMode mode;
    int threads;
  };
  for (Variant v : {Variant{"gf-table w=8, serial", 8,
                            ec::KernelMode::kGfTable, 0},
                    Variant{"gf-table w=8, 2 threads", 8,
                            ec::KernelMode::kGfTable, 2},
                    Variant{"gf-table w=8, 4 threads", 8,
                            ec::KernelMode::kGfTable, 4},
                    Variant{"gf-table w=4, serial", 4,
                            ec::KernelMode::kGfTable, 0},
                    Variant{"gf-table w=16, serial", 16,
                            ec::KernelMode::kGfTable, 0},
                    Variant{"xor-bitmatrix w=8, serial", 8,
                            ec::KernelMode::kXorBitmatrix, 0}}) {
    core::ECCheckConfig ec;
    ec.k = 2;
    ec.m = 2;
    ec.packet_size = kib(64);
    ec.gf_width = v.w;
    ec.kernel = v.mode;
    ec.data_plane_threads = v.threads;
    std::printf("%-28s %-12s\n", v.name,
                human_seconds(wall_save_seconds(ec, shards)).c_str());
  }
  std::printf(
      "\nUse this table to calibrate ClusterConfig::encode_bandwidth_per_"
      "thread for your host: the XOR-bitmatrix kernel avoids table lookups "
      "entirely (it often wins for small k where many coefficients are 1), "
      "table kernels win as k grows; thread-pool slicing scales with "
      "available cores.\n");
  return 0;
}
