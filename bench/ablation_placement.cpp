// Ablation (§IV-B1, Fig. 9) — communication volume of the sweep-line
// data/parity node selection vs naive placements, across cluster shapes.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/harness.hpp"
#include "core/placement.hpp"

namespace {

using namespace eccheck;
using core::IndexInterval;
using core::PlacementConfig;

/// P2P volume (unit shards) for an arbitrary data-node assignment:
/// data packets not already on their node + parity results that must move
/// to a parity node (reduction groups without a parity-hosted worker get a
/// free target only if one participant sits on the right parity node).
double p2p_volume(const PlacementConfig& cfg,
                  const std::vector<int>& data_nodes) {
  const int W = cfg.num_nodes * cfg.gpus_per_node;
  const int per_chunk = W / cfg.k;
  std::vector<bool> is_data(static_cast<std::size_t>(cfg.num_nodes), false);
  for (int d : data_nodes) is_data[static_cast<std::size_t>(d)] = true;
  std::vector<int> parity_nodes;
  for (int n = 0; n < cfg.num_nodes; ++n)
    if (!is_data[static_cast<std::size_t>(n)]) parity_nodes.push_back(n);

  double volume = 0;
  for (int w = 0; w < W; ++w) {
    const int c = w / per_chunk;
    if (core::node_of(cfg, w) != data_nodes[static_cast<std::size_t>(c)])
      volume += 1;
  }
  for (int j = 0; j < per_chunk; ++j) {
    for (int r = 0; r < cfg.m; ++r) {
      const int dest = parity_nodes[static_cast<std::size_t>(r)];
      bool free_target = false;
      for (int c = 0; c < cfg.k; ++c)
        if (core::node_of(cfg, c * per_chunk + j) == dest) free_target = true;
      if (!free_target) volume += 1;
    }
  }
  return volume;
}

double best_exhaustive(const PlacementConfig& cfg) {
  std::vector<int> nodes(static_cast<std::size_t>(cfg.num_nodes));
  std::iota(nodes.begin(), nodes.end(), 0);
  std::vector<int> pick(static_cast<std::size_t>(cfg.num_nodes), 0);
  std::fill(pick.begin(), pick.begin() + cfg.k, 1);
  std::sort(pick.begin(), pick.end());
  double best = 1e18;
  do {
    std::vector<int> data_nodes;
    for (int n = 0; n < cfg.num_nodes; ++n)
      if (pick[static_cast<std::size_t>(n)]) data_nodes.push_back(n);
    // Try all assignments of chunks to the chosen node set.
    std::sort(data_nodes.begin(), data_nodes.end());
    do {
      best = std::min(best, p2p_volume(cfg, data_nodes));
    } while (std::next_permutation(data_nodes.begin(), data_nodes.end()));
  } while (std::next_permutation(pick.begin(), pick.end()));
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: data/parity node selection (sweep line vs naive)",
      "P2P communication volume in unit shards; lower is better");

  std::printf("%-20s %-12s %-12s %-12s %-12s\n", "cluster (n,g,k,m)",
              "sweep-line", "first-k", "last-k", "exhaustive");
  for (auto [n, g, k] : std::vector<std::array<int, 3>>{
           {3, 2, 2}, {4, 4, 2}, {6, 2, 3}, {6, 2, 4}, {8, 2, 4}, {8, 4, 6}}) {
    PlacementConfig cfg;
    cfg.num_nodes = n;
    cfg.gpus_per_node = g;
    cfg.k = k;
    cfg.m = n - k;
    if ((n * g) % k != 0) continue;

    auto plan = core::plan_placement(cfg);
    double sweep = p2p_volume(cfg, plan.data_nodes);

    std::vector<int> first_k, last_k;
    for (int i = 0; i < k; ++i) first_k.push_back(i);
    for (int i = n - k; i < n; ++i) last_k.push_back(i);
    std::printf("%-20s %-12.0f %-12.0f %-12.0f %-12.0f\n",
                ("(" + std::to_string(n) + "," + std::to_string(g) + "," +
                 std::to_string(k) + "," + std::to_string(n - k) + ")")
                    .c_str(),
                sweep, p2p_volume(cfg, first_k), p2p_volume(cfg, last_k),
                best_exhaustive(cfg));
  }
  std::printf(
      "\nShape: the sweep-line pairing matches the exhaustive optimum and "
      "beats naive contiguous picks (Fig. 9's 6-vs-7-unit example "
      "generalised).\n");
  return 0;
}
