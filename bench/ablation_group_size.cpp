// Extension (§VI) — group-based checkpointing: reliability vs per-device
// communication as the ECCheck group size grows, and the optimal group size
// for reliability targets (the paper's stated future work).
#include <cstdio>

#include "analysis/recovery_rate.hpp"
#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header(
      "Ablation: group-based checkpointing in a 2000-node cluster",
      "each group runs ECCheck with k = m = group/2; per-device comm = m*s");

  const int total = 2000;
  for (double p : {0.005, 0.01, 0.02}) {
    std::printf("\n-- node failure probability p = %.3f --\n", p);
    std::printf("%-12s %-12s %-22s %-18s\n", "group size", "#groups",
                "cluster recovery rate", "per-device comm");
    for (const auto& t : analysis::group_tradeoff_table(
             total, p, {2, 4, 8, 10, 20, 40, 100})) {
      std::printf("%-12d %-12d %-22.6f %-18.1f\n", t.group_size, t.num_groups,
                  t.cluster_recovery_rate, t.per_device_comm_factor);
    }
    for (double target : {0.99, 0.999, 0.9999}) {
      int g = analysis::optimal_group_size(total, p, target,
                                           {2, 4, 8, 10, 20, 40, 100});
      if (g > 0)
        std::printf("smallest group meeting %.4f reliability: %d\n", target,
                    g);
      else
        std::printf("no candidate group size meets %.4f reliability\n",
                    target);
    }
  }
  std::printf(
      "\nShape: bigger groups buy reliability at linear per-device "
      "communication cost; the optimizer picks the cheapest sufficient "
      "group.\n");
  return 0;
}
