// Many-rank transport scaling bench: fork one real process per rank (UDS
// loopback, 32 by default — the shape of a rack-local training job) and
// drive whole erasure-stripe save cycles through the fabric, A/B over the
// transport data plane:
//
//   blocking   ack_window=1 + scatter_gather=false — the pre-pipelining
//              plane: copy framing, one CRC-echo RTT per frame;
//   pipelined  ack_window=W + writev framing — up to W frames in flight
//              per connection, acks reconciled at flush/barrier points,
//              multi-peer fan-outs through the epoll SendPump.
//
// Workloads (--workload):
//   stripe   rounds × core::stripe_encode on a k+m = ranks stripe — the
//            paper's encode protocol: metadata broadcast, m parity rows
//            XOR-reduced around the data ring, parity shipped, barrier.
//   engine   rounds × core::fabric_save of a sharded DNN checkpoint — the
//            full engine save cycle (slice exchange, encode, commit).
//
// Per leg the parent aggregates the ranks' wall time (max), wire bytes and
// ack-stall time (sum), prints a table, and appends BENCH JSON-lines when
// ECCHECK_BENCH_JSON is set (bench/baselines/scale_transport.json holds the
// checked-in reference). The final "speedup" record is the headline:
// pipelined over blocking stripe-save throughput at scale.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/fabric_engine.hpp"
#include "core/fabric_protocol.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "net/transport.hpp"
#include "obs/json.hpp"

namespace {

using namespace eccheck;
using Clock = std::chrono::steady_clock;

struct Options {
  int ranks = 32;      // 32–128 forked processes
  int rounds = 3;      // timed save cycles per leg
  int chunk_kib = 1;   // stripe chunk size: small chunks make the stripe
                       // frame-rate-bound, which is what the pipelined
                       // plane improves (large chunks are memcpy-bound on
                       // loopback and flatten both legs equally)
  int window = 16;     // pipelined leg's ack window
  std::string workload = "stripe";  // stripe | engine
};

struct LegResult {
  double wall_s = 0;               // max over ranks (the collective's span)
  std::uint64_t send_bytes = 0;    // Σ net.send.bytes
  std::uint64_t writev_bytes = 0;  // Σ net.send.writev_bytes
  std::uint64_t frames = 0;        // Σ net.send.count
  std::uint64_t ack_wait_us = 0;   // Σ net.ack.wait_us (sender stall)
};

net::TransportOptions leg_opts(const Options& o, bool pipelined) {
  net::TransportOptions t;
  t.connect_timeout = net::Millis(2000);
  t.connect_retries = 40;  // absorb the 32-process start-up storm
  t.backoff_base = net::Millis(2);
  t.backoff_max = net::Millis(50);
  t.io_timeout = net::Millis(30000);  // stop-and-wait at scale is slow
  t.ack_window = pipelined ? o.window : 1;
  t.scatter_gather = pipelined;
  return t;
}

/// One forked rank: run the workload, write this rank's numbers as
/// key=value lines for the parent to aggregate.
void run_rank(int rank, const Options& o,
              const std::vector<net::Endpoint>& eps,
              const std::string& out_dir, bool pipelined) {
  net::SocketTransport fabric(rank, eps, leg_opts(o, pipelined));
  std::vector<int> all(static_cast<std::size_t>(o.ranks));
  std::iota(all.begin(), all.end(), 0);

  double wall_s = 0;
  if (o.workload == "stripe") {
    core::FabricStripeConfig scfg;
    scfg.k = o.ranks / 2;
    scfg.m = o.ranks - scfg.k;
    scfg.chunk_bytes = static_cast<std::size_t>(o.chunk_kib) * 1024;
    scfg.seed = 42;
    core::stripe_encode(fabric, scfg);  // warm-up: connect storm + caches
    const auto t0 = Clock::now();
    for (int r = 0; r < o.rounds; ++r) core::stripe_encode(fabric, scfg);
    wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  } else {
    // Engine save cycle: every rank generates the (deterministic) sharded
    // checkpoint, then drives its node through fabric_save.
    // Deliberately tiny model: the bench measures the transport plane, not
    // GEMM-sized tensors, and 32+ single-CPU forked ranks each hold a full
    // shard set.
    dnn::CheckpointGenConfig gen;
    gen.model = dnn::make_model(dnn::ModelFamily::kGPT2, 48, 2, 6, "scale");
    gen.model.vocab = 256;
    gen.parallelism = {2, o.ranks / 2, 1};
    gen.seed = 42;
    const auto shards = dnn::make_sharded_checkpoint(gen);
    std::vector<const dnn::StateDict*> ptrs;
    for (const auto& sd : shards) ptrs.push_back(&sd);
    core::ECCheckConfig ecfg;
    ecfg.k = o.ranks / 2;
    ecfg.m = o.ranks - ecfg.k;
    ecfg.packet_size = 8192;
    core::fabric_save(fabric, ecfg, ptrs, 1);  // warm-up
    const auto t0 = Clock::now();
    for (int r = 0; r < o.rounds; ++r)
      core::fabric_save(fabric, ecfg, ptrs, 2 + r);
    wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  }

  std::ofstream f(out_dir + "/rank" + std::to_string(rank) + ".txt");
  f << "wall_s=" << wall_s << "\n"
    << "send_bytes=" << fabric.stats().counter("net.send.bytes") << "\n"
    << "writev_bytes=" << fabric.stats().counter("net.send.writev_bytes")
    << "\n"
    << "frames=" << fabric.stats().counter("net.send.count") << "\n"
    << "ack_wait_us=" << fabric.stats().counter("net.ack.wait_us") << "\n";
}

LegResult run_leg(const Options& o, bool pipelined) {
  char tmpl[] = "/tmp/eccheck-scalebench-XXXXXX";
  const char* made = ::mkdtemp(tmpl);
  if (!made) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  const std::string dir = made;
  std::vector<net::Endpoint> eps;
  for (int r = 0; r < o.ranks; ++r)
    eps.push_back(net::Endpoint::uds(dir + "/rank" + std::to_string(r) +
                                     ".sock"));

  std::vector<pid_t> pids;
  for (int r = 0; r < o.ranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid == 0) {
      try {
        run_rank(r, o, eps, dir, pipelined);
        std::_Exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "scale_transport rank %d: %s\n", r, e.what());
        std::_Exit(1);
      }
    }
    pids.push_back(pid);
  }
  bool failed = false;
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) failed = true;
  }
  if (failed) {
    std::fprintf(stderr, "scale_transport: a rank failed (%s leg)\n",
                 pipelined ? "pipelined" : "blocking");
    std::exit(1);
  }

  LegResult res;
  for (int r = 0; r < o.ranks; ++r) {
    std::ifstream f(dir + "/rank" + std::to_string(r) + ".txt");
    std::string line;
    while (std::getline(f, line)) {
      const auto eq = line.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = line.substr(0, eq);
      const std::string val = line.substr(eq + 1);
      if (key == "wall_s")
        res.wall_s = std::max(res.wall_s, std::stod(val));
      else if (key == "send_bytes")
        res.send_bytes += std::stoull(val);
      else if (key == "writev_bytes")
        res.writev_bytes += std::stoull(val);
      else if (key == "frames")
        res.frames += std::stoull(val);
      else if (key == "ack_wait_us")
        res.ack_wait_us += std::stoull(val);
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return res;
}

double mib_per_s(const LegResult& r) {
  return r.wall_s > 0
             ? static_cast<double>(r.send_bytes) / (1024.0 * 1024.0) / r.wall_s
             : 0;
}

std::string leg_json(const Options& o, const LegResult& r) {
  std::ostringstream os;
  os << "{\"wall_s\":" << obs::json_number(r.wall_s / o.rounds)
     << ",\"throughput_mib_s\":" << obs::json_number(mib_per_s(r))
     << ",\"wire_mib\":"
     << obs::json_number(static_cast<double>(r.send_bytes) / (1024.0 * 1024.0))
     << ",\"stall_ack_s\":"
     << obs::json_number(static_cast<double>(r.ack_wait_us) / 1e6)
     << ",\"frames_count\":" << r.frames << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ranks") {
      o.ranks = std::stoi(next());
    } else if (arg == "--rounds") {
      o.rounds = std::stoi(next());
    } else if (arg == "--chunk-kib") {
      o.chunk_kib = std::stoi(next());
    } else if (arg == "--window") {
      o.window = std::stoi(next());
    } else if (arg == "--workload") {
      o.workload = next();
    } else {
      std::fprintf(stderr,
                   "usage: scale_transport [--ranks N] [--rounds R] "
                   "[--chunk-kib K] [--window W] [--workload stripe|engine]\n");
      return 2;
    }
  }
  if (o.ranks < 4 || o.ranks % 2 != 0) {
    std::fprintf(stderr, "--ranks must be even and >= 4\n");
    return 2;
  }
  if (o.workload != "stripe" && o.workload != "engine") {
    std::fprintf(stderr, "--workload must be stripe or engine\n");
    return 2;
  }

  const std::string shape = o.workload + "/ranks=" + std::to_string(o.ranks) +
                            "/chunk=" + std::to_string(o.chunk_kib) + "KiB";
  std::printf("scale_transport: %s, %d rounds per leg\n", shape.c_str(),
              o.rounds);

  const LegResult blocking = run_leg(o, /*pipelined=*/false);
  const LegResult pipelined = run_leg(o, /*pipelined=*/true);
  const double speedup =
      mib_per_s(blocking) > 0 ? mib_per_s(pipelined) / mib_per_s(blocking) : 0;

  std::printf("%-22s %10s %14s %12s %10s\n", "leg", "wall/rnd", "MiB/s",
              "ack-stall s", "frames");
  std::printf("%-22s %9.3fs %14.1f %12.2f %10llu\n", "blocking (W=1,copy)",
              blocking.wall_s / o.rounds, mib_per_s(blocking),
              static_cast<double>(blocking.ack_wait_us) / 1e6,
              static_cast<unsigned long long>(blocking.frames));
  std::printf("%-22s %9.3fs %14.1f %12.2f %10llu\n",
              ("pipelined (W=" + std::to_string(o.window) + ",writev)").c_str(),
              pipelined.wall_s / o.rounds, mib_per_s(pipelined),
              static_cast<double>(pipelined.ack_wait_us) / 1e6,
              static_cast<unsigned long long>(pipelined.frames));
  std::printf("speedup: %.2fx %s-save throughput\n", speedup,
              o.workload.c_str());

  bench::maybe_append_bench_json("scale_transport", shape + "/blocking",
                                 leg_json(o, blocking));
  bench::maybe_append_bench_json(
      "scale_transport",
      shape + "/pipelined(W=" + std::to_string(o.window) + ")",
      leg_json(o, pipelined));
  bench::maybe_append_bench_json(
      "scale_transport", shape + "/speedup",
      "{\"pipelined_over_blocking\":" + obs::json_number(speedup) + "}");
  return 0;
}
