// Ablation (§V-B settings): coding-buffer (packet) size sweep — the paper
// reserves 64 MB buffers; smaller packets pipeline more finely but add
// per-packet overhead, larger ones delay the downstream stages.
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header(
      "Ablation: coding buffer (packet) size (GPT-2 5.3B, 4x4 GPUs, k=m=2)",
      "virtual packet size = packet_size x size_scale");

  dnn::ParallelismSpec par{4, 4, 1};
  const auto model = dnn::table1_models()[1];
  auto workload = bench::make_scaled_workload(model, par);

  std::printf("%-18s %-18s %-12s %-12s %-10s\n", "packet (real)",
              "packet (virtual)", "save", "stall", "stripes");
  for (std::size_t packet_kib : {16, 64, 128, 512, 2048}) {
    core::ECCheckConfig ec;
    ec.k = 2;
    ec.m = 2;
    ec.packet_size = kib(packet_kib);
    core::ECCheckEngine engine(ec);

    auto cfg = bench::testbed_config();
    cfg.size_scale = workload.size_scale;
    cluster::VirtualCluster cluster(cfg);
    auto rep = engine.save(cluster, workload.shards, 1);

    std::size_t max_shard = 0;
    for (const auto& sd : workload.shards)
      max_shard = std::max(max_shard, sd.tensor_bytes());
    const std::size_t B = core::packets_needed(max_shard, ec.packet_size);
    std::printf("%-18s %-18s %-12s %-12s %-10zu\n",
                human_bytes(static_cast<double>(ec.packet_size)).c_str(),
                human_bytes(static_cast<double>(ec.packet_size) *
                            workload.size_scale)
                    .c_str(),
                human_seconds(rep.total_time).c_str(),
                human_seconds(rep.stall_time).c_str(),
                B * static_cast<std::size_t>(
                        cluster.world_size() / ec.k));
  }
  std::printf(
      "\nShape: total time is packet-size-insensitive over a wide range "
      "(the pipeline keeps every stage busy); very large packets reduce "
      "overlap, very small ones only add scheduling granularity.\n");
  return 0;
}
