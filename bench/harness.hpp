// Shared benchmark harness: builds the paper's testbed (§V-B) in the
// virtual cluster and runs the four engines on Table-I models.
//
// Payloads are generated from a scaled-down model (hidden ≈ 128) so the
// real data path runs at laptop scale, while ClusterConfig::size_scale
// charges virtual time for the full-size checkpoint — the absolute numbers
// are cost-model outputs, the *shape* (orderings, ratios, crossovers) is
// what reproduces the paper's figures. See EXPERIMENTS.md.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "ckpt/base_gemini.hpp"
#include "ckpt/base_remote.hpp"
#include "core/eccheck_engine.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "trainsim/train_profile.hpp"

namespace eccheck::bench {

/// The paper's testbed: 4 nodes × 4 A100s, TP=4 intra-node, PP=4 across
/// nodes, 100 Gbps NIC, 5 Gbps aggregate remote storage.
inline cluster::ClusterConfig testbed_config(int nodes = 4, int gpus = 4) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.gpus_per_node = gpus;
  cfg.nic_bandwidth = gbps(100);
  cfg.dtoh_bandwidth = gibps(16);
  cfg.remote_storage_bandwidth = gbps(5);
  cfg.host_memcpy_bandwidth = gibps(20);
  cfg.serialize_bandwidth = gibps(1);
  cfg.encode_bandwidth_per_thread = gibps(1.2);
  cfg.encode_threads = 16;
  cfg.xor_bandwidth = gibps(8);
  return cfg;
}

struct ScaledWorkload {
  std::vector<dnn::StateDict> shards;
  double size_scale = 1.0;       ///< virtual bytes per real byte
  dnn::ModelSpec full_model;     ///< the paper-scale spec
  dnn::ParallelismSpec parallelism;
};

/// Generate shards for `model` scaled down to `sim_hidden`, with size_scale
/// set so virtual sizes match the full model.
inline ScaledWorkload make_scaled_workload(const dnn::ModelSpec& model,
                                           const dnn::ParallelismSpec& par,
                                           int sim_hidden = 128,
                                           std::uint64_t seed = 42) {
  ScaledWorkload w;
  w.full_model = model;
  w.parallelism = par;
  double factor = static_cast<double>(model.hidden) / sim_hidden;
  dnn::ModelSpec scaled = factor > 1.0 ? model.scaled_down(factor) : model;
  // Keep hidden divisible by tp.
  if (scaled.hidden % par.tensor_parallel != 0)
    scaled.hidden += par.tensor_parallel - scaled.hidden % par.tensor_parallel;
  dnn::CheckpointGenConfig gen;
  gen.model = scaled;
  gen.parallelism = par;
  gen.seed = seed;
  w.shards = dnn::make_sharded_checkpoint(gen);
  w.size_scale = static_cast<double>(model.param_count()) /
                 static_cast<double>(scaled.param_count());
  return w;
}

/// Convenience: the four engines of §V-B with the paper's settings
/// (k = m = 2, 64 MB buffers → virtual packet = packet_size × size_scale).
struct EngineSet {
  std::unique_ptr<ckpt::CheckpointEngine> base1;
  std::unique_ptr<ckpt::CheckpointEngine> base2;
  std::unique_ptr<ckpt::CheckpointEngine> base3;
  std::unique_ptr<core::ECCheckEngine> eccheck;

  std::vector<ckpt::CheckpointEngine*> all() const {
    return {base1.get(), base2.get(), base3.get(), eccheck.get()};
  }
};

inline EngineSet make_engines(int k = 2, int m = 2,
                              std::size_t packet = kib(128)) {
  EngineSet e;
  e.base1 = std::make_unique<ckpt::RemoteSyncEngine>();
  e.base2 = std::make_unique<ckpt::RemoteTwoPhaseEngine>();
  e.base3 = std::make_unique<ckpt::GeminiReplicationEngine>(2);
  core::ECCheckConfig cfg;
  cfg.k = k;
  cfg.m = m;
  cfg.packet_size = packet;
  e.eccheck = std::make_unique<core::ECCheckEngine>(cfg);
  return e;
}

/// Attach the profiled training calendars (§IV-B3) to the cluster's NICs.
inline trainsim::TrainProfile attach_training_calendar(
    cluster::VirtualCluster& cluster, const dnn::ModelSpec& model,
    const dnn::ParallelismSpec& par, int iterations = 50) {
  auto workload = trainsim::estimate_workload(model, par);
  auto prof = trainsim::simulate_iteration(
      workload, par.pipeline_parallel, cluster.config().nic_bandwidth,
      par.data_parallel);
  for (int n = 0; n < cluster.num_nodes(); ++n)
    cluster.set_nic_calendar(n, prof.tiled(n, iterations));
  return prof;
}

inline void print_header(const std::string& title,
                         const std::string& subtitle = "") {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
}

// ---- machine-readable per-stage output ------------------------------------
// Reports carry a breakdown (named stage finish times) and a stats map
// (per-edge-kind byte/task counters); these helpers serialize them so
// BENCH_*.json entries can record breakdowns, not just totals.

/// One JSON scalar: floating-point values go through obs::json_number so
/// they round-trip exactly (ostream's default 6 significant digits silently
/// truncated sub-microsecond timings and large byte counts before).
template <typename V>
inline std::string json_value(V v) {
  if constexpr (std::is_floating_point_v<V>)
    return obs::json_number(static_cast<double>(v));
  else
    return std::to_string(v);
}

template <typename Map>
inline std::string map_json(const Map& m) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::json_escape(k) << "\":" << json_value(v);
  }
  os << "}";
  return os.str();
}

inline std::string save_report_json(const ckpt::SaveReport& r) {
  std::ostringstream os;
  os << "{\"stall_time_s\":" << obs::json_number(r.stall_time)
     << ",\"total_time_s\":" << obs::json_number(r.total_time)
     << ",\"network_bytes\":" << r.network_bytes
     << ",\"remote_bytes\":" << r.remote_bytes
     << ",\"breakdown\":" << map_json(r.breakdown)
     << ",\"stats\":" << map_json(r.stats) << "}";
  return os.str();
}

inline std::string load_report_json(const ckpt::LoadReport& r) {
  std::ostringstream os;
  os << "{\"success\":" << (r.success ? "true" : "false")
     << ",\"resume_time_s\":" << obs::json_number(r.resume_time)
     << ",\"total_time_s\":" << obs::json_number(r.total_time)
     << ",\"detail\":\"" << obs::json_escape(r.detail)
     << "\",\"stats\":" << map_json(r.stats) << "}";
  return os.str();
}

/// Append one JSON-lines record {"bench":...,"label":...,"report":<payload>}
/// to `path` (creating it if needed).
inline void append_bench_json(const std::string& path, const std::string& bench,
                              const std::string& label,
                              const std::string& payload) {
  std::ofstream f(path, std::ios::app);
  if (!f) {
    // Warn once: a typo'd ECCHECK_BENCH_JSON path otherwise silently drops
    // every record of the run.
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "eccheck: cannot append bench JSON to '%s': %s\n",
                   path.c_str(), std::strerror(errno));
    }
    return;
  }
  f << "{\"bench\":\"" << obs::json_escape(bench) << "\",\"label\":\""
    << obs::json_escape(label) << "\",\"report\":" << payload << "}\n";
}

/// Like append_bench_json, but only when ECCHECK_BENCH_JSON names a path —
/// benches call this unconditionally, so any run can be made machine-
/// readable without touching the bench source.
inline void maybe_append_bench_json(const std::string& bench,
                                    const std::string& label,
                                    const std::string& payload) {
  const char* path = std::getenv("ECCHECK_BENCH_JSON");
  if (path && *path) append_bench_json(path, bench, label, payload);
}

}  // namespace eccheck::bench
