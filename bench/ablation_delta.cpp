// Ablation — incremental checkpoints with sparse parity updates
// (ECCheckConfig::delta), swept over update density.
//
// An ECRM-style recommendation workload touches a density-d subset of its
// embedding rows per iteration. A full ECCheck save re-encodes the whole
// stripe; a delta save ships only the dirty extents' XOR-deltas and folds
// them into data and parity rows in place (P' = P ⊕ G·Δ). Both leave
// byte-identical stores — this bench verifies that while charting the
// traffic and wall-time gap per density, including the fallback crossover
// at cfg.delta.max_dirty_ratio.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"
#include "cluster/fabric.hpp"
#include "core/fabric_engine.hpp"
#include "core/session.hpp"
#include "dnn/sparse_update.hpp"

namespace {

using namespace eccheck;

constexpr int kK = 2;
constexpr int kM = 2;
constexpr int kNodes = kK + kM;
constexpr int kWorld = kNodes;  // one worker per node

core::ECCheckConfig ec_config(bool delta_on) {
  core::ECCheckConfig cfg;
  cfg.k = kK;
  cfg.m = kM;
  cfg.packet_size = kib(64);
  cfg.delta.enabled = delta_on;
  cfg.delta.granularity = 512;
  cfg.delta.max_dirty_ratio = 0.35;
  return cfg;
}

dnn::SparseUpdateSpec spec_for(double density) {
  dnn::SparseUpdateSpec spec;
  spec.embedding_rows = 8192;
  spec.embedding_dim = 64;   // 2 MiB embedding shard per worker
  spec.dense_tensors = 2;
  spec.dense_elems = 1024;
  spec.row_density = density;
  return spec;
}

struct ModeResult {
  std::size_t network_bytes = 0;  ///< fabric traffic of the measured save
  double virtual_s = 0;           ///< cost-model save time
  double wall_s = 0;              ///< real time of the measured save
  std::uint64_t dirty_bytes = 0;
  std::uint64_t extents = 0;
  std::uint64_t delta_saves = 0;
  std::uint64_t fallbacks = 0;
  std::vector<std::uint64_t> digests;  ///< recovered bytes after the save
  std::string report_json;
};

std::uint64_t stat_of(const ckpt::SaveReport& rep, const std::string& key) {
  const auto it = rep.stats.find(key);
  return it == rep.stats.end() ? 0 : it->second;
}

/// One fresh cluster: save iteration 0 (always a full encode — it seeds the
/// base cache), apply one density-d update, measure the second save, then
/// recover and digest what comes back.
ModeResult run_mode(double density, bool delta_on) {
  const dnn::SparseUpdateSpec spec = spec_for(density);
  cluster::ClusterConfig cc;
  cc.num_nodes = kNodes;
  cc.gpus_per_node = 1;
  cluster::VirtualCluster vc(cc);
  cluster::VirtualFabric fabric(vc);
  core::FabricSession session(fabric, ec_config(delta_on), 1, 2);

  std::vector<dnn::StateDict> shards;
  for (int w = 0; w < kWorld; ++w)
    shards.push_back(dnn::make_sparse_model_shard(spec, w));
  std::vector<const dnn::StateDict*> ptrs;
  for (const auto& sd : shards) ptrs.push_back(&sd);

  session.save(ptrs);  // v1: warm-up, populates the base cache
  for (int w = 0; w < kWorld; ++w)
    dnn::apply_sparse_update(shards[static_cast<std::size_t>(w)], spec, w, 1);

  const auto t0 = std::chrono::steady_clock::now();
  const ckpt::SaveReport rep = session.save(ptrs);
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult r;
  r.network_bytes = rep.network_bytes;
  r.virtual_s = rep.total_time;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.dirty_bytes = stat_of(rep, "delta.dirty.bytes");
  r.extents = stat_of(rep, "delta.extents.count");
  r.delta_saves = stat_of(rep, "delta.save.count");
  r.fallbacks = stat_of(rep, "delta.fallback.count");
  r.report_json = bench::save_report_json(rep);

  std::vector<dnn::StateDict> out;
  auto l = session.load(out);
  if (l.report.success)
    for (const auto& sd : out) r.digests.push_back(sd.digest());
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: incremental checkpoints (sparse parity updates)");
  std::printf(
      "n=%d (k=%d m=%d), %d workers x 2 MiB embedding + dense tower,\n"
      "dirty tracking at 512 B (embedding rows are 256 B), fallback at\n"
      "dirty_ratio > 0.35.\n"
      "Measured save: second version, one density-d update after v1.\n\n",
      kNodes, kK, kM, kWorld);
  std::printf(
      "  density   full net     delta net    ratio   dirty bytes  extents"
      "   path        bitexact   full/delta wall\n");

  for (double density : {0.01, 0.05, 0.20, 0.50, 1.00}) {
    const ModeResult full = run_mode(density, /*delta_on=*/false);
    const ModeResult delta = run_mode(density, /*delta_on=*/true);
    const bool bitexact =
        !full.digests.empty() && full.digests == delta.digests;
    const double ratio =
        delta.network_bytes == 0
            ? 0.0
            : static_cast<double>(full.network_bytes) /
                  static_cast<double>(delta.network_bytes);
    const char* path = delta.delta_saves > 0 ? "delta" : "full(fb)";
    std::printf(
        "  %5.0f%%   %-11s  %-11s  %5.1fx  %-11s  %-7llu  %-9s  %-8s  "
        "%s / %s\n",
        density * 100, human_bytes(full.network_bytes).c_str(),
        human_bytes(delta.network_bytes).c_str(), ratio,
        human_bytes(delta.dirty_bytes).c_str(),
        static_cast<unsigned long long>(delta.extents), path,
        bitexact ? "yes" : "NO", human_seconds(full.wall_s).c_str(),
        human_seconds(delta.wall_s).c_str());

    char label[64];
    std::snprintf(label, sizeof label, "density=%.0f%%", density * 100);
    bench::maybe_append_bench_json("ablation_delta",
                                   std::string(label) + "/full",
                                   full.report_json);
    bench::maybe_append_bench_json("ablation_delta",
                                   std::string(label) + "/delta",
                                   delta.report_json);
    if (!bitexact) {
      std::fprintf(stderr,
                   "ablation_delta: recovered digests diverge at density "
                   "%.0f%%\n",
                   density * 100);
      return 1;
    }
  }
  std::printf(
      "\nDensities above the 35%% dirty-ratio threshold fall back to the "
      "full\nencode (path column), so the delta config never loses to full "
      "re-encode\nby more than the diff cost.\n");
  return 0;
}
