// Microbenchmark (§IV-B1): sweep-line placement planning cost at scale —
// the planner must stay cheap enough to run at every initialize() even for
// very large clusters.
#include <benchmark/benchmark.h>

#include "core/placement.hpp"

namespace {

using namespace eccheck;

void BM_PlanPlacement(benchmark::State& state) {
  core::PlacementConfig cfg;
  cfg.num_nodes = static_cast<int>(state.range(0));
  cfg.gpus_per_node = 8;
  cfg.k = cfg.num_nodes / 2;
  cfg.m = cfg.num_nodes - cfg.k;
  for (auto _ : state) {
    auto plan = core::plan_placement(cfg);
    benchmark::DoNotOptimize(plan.data_nodes.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlanPlacement)
    ->Arg(4)
    ->Arg(64)
    ->Arg(512)
    ->Arg(2048)
    ->Complexity(benchmark::oNLogN);

void BM_MaxOverlapPairingOnly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int g = 8;
  const int k = n / 2;
  const int W = n * g;
  std::vector<core::IndexInterval> origin, data;
  for (int i = 0; i < n; ++i) origin.push_back({i * g, (i + 1) * g});
  for (int c = 0; c < k; ++c)
    data.push_back({c * (W / k), (c + 1) * (W / k)});
  for (auto _ : state) {
    auto assign = core::max_overlap_pairing(origin, data);
    benchmark::DoNotOptimize(assign.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxOverlapPairingOnly)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Complexity(benchmark::oNLogN);

void BM_CommVolumeAccounting(benchmark::State& state) {
  core::PlacementConfig cfg;
  cfg.num_nodes = static_cast<int>(state.range(0));
  cfg.gpus_per_node = 4;
  cfg.k = cfg.num_nodes / 2;
  cfg.m = cfg.num_nodes - cfg.k;
  auto plan = core::plan_placement(cfg);
  for (auto _ : state) {
    auto v = core::actual_comm_volume(plan, 1.0);
    benchmark::DoNotOptimize(v.total());
  }
}
BENCHMARK(BM_CommVolumeAccounting)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
