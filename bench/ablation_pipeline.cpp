// Ablation (§IV-C) — pipelined encode → XOR-reduce → P2P vs stage barriers,
// in two forms: real threads on real buffers (run_pipeline), and the
// virtual-cluster engine with cfg.pipelined toggled.
#include <cstdio>
#include <thread>

#include "bench/harness.hpp"
#include "common/rng.hpp"
#include "runtime/pipeline.hpp"

namespace {

using namespace eccheck;

/// Real-thread microbenchmark: encode and reduce stages over packet buffers.
void real_thread_pipeline() {
  struct Item {
    Buffer data;
    Buffer encoded;
    Buffer reduced;
  };
  const std::size_t P = 1 << 20;
  const int items_n = 48;
  ec::CrsCodec codec(2, 2, 8);

  auto make_items = [&] {
    std::vector<Item> items;
    for (int i = 0; i < items_n; ++i) {
      Item it;
      it.data = Buffer(P, Buffer::Init::kUninitialized);
      fill_random(it.data.span(), static_cast<std::uint64_t>(i));
      it.encoded = Buffer(P, Buffer::Init::kUninitialized);
      it.reduced = Buffer(P, Buffer::Init::kUninitialized);
      items.push_back(std::move(it));
    }
    return items;
  };
  auto encode = [&](Item& it) {
    codec.encode_partial(2, 0, it.data.span(), it.encoded.span(), false);
  };
  auto reduce = [&](Item& it) {
    std::memcpy(it.reduced.data(), it.encoded.data(), P);
    xor_into(it.reduced.span(), it.data.span());
  };

  using Clock = std::chrono::steady_clock;
  auto seq_items = make_items();
  auto t0 = Clock::now();
  for (auto& it : seq_items) {
    encode(it);
    reduce(it);
  }
  double seq = std::chrono::duration<double>(Clock::now() - t0).count();

  auto pipe_items = make_items();
  std::vector<std::function<void(Item&)>> stages = {encode, reduce};
  auto stats = runtime::run_pipeline(pipe_items, stages, 4);

  std::printf("real threads, %d x %s packets (%u hardware threads — "
              "speedup needs >1):\n",
              items_n, human_bytes(P).c_str(),
              std::thread::hardware_concurrency());
  std::printf("  sequential        %s\n", human_seconds(seq).c_str());
  std::printf("  2-stage pipeline  %s  (speedup %.2fx)\n",
              human_seconds(stats.wall_seconds).c_str(),
              seq / stats.wall_seconds);
}

/// Virtual-cluster ablation: the engine's pipelined flag.
void engine_pipeline() {
  dnn::ParallelismSpec par{4, 4, 1};
  const auto model = dnn::table1_models()[1];  // GPT-2 5.3B
  auto workload = bench::make_scaled_workload(model, par);

  std::printf("\nvirtual cluster, GPT-2 5.3B save:\n");
  for (bool pipelined : {true, false}) {
    auto cfg = bench::testbed_config();
    cfg.size_scale = workload.size_scale;
    cluster::VirtualCluster cluster(cfg);
    core::ECCheckConfig ec;
    ec.k = 2;
    ec.m = 2;
    ec.packet_size = kib(128);
    ec.pipelined = pipelined;
    core::ECCheckEngine engine(ec);
    auto rep = engine.save(cluster, workload.shards, 1);
    std::printf("  %-22s total=%s stall=%s\n",
                pipelined ? "pipelined (paper)" : "encode barrier (ablated)",
                human_seconds(rep.total_time).c_str(),
                human_seconds(rep.stall_time).c_str());
  }
}

}  // namespace

int main() {
  bench::print_header("Ablation: pipelined execution (encode/reduce/P2P)");
  real_thread_pipeline();
  engine_pipeline();
  return 0;
}
