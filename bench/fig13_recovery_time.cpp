// Fig. 13 — recovery time under the paper's two failure scenarios
// (GPT-2 models, 4 nodes × 4 GPUs, k = m = 2):
//   (a) both data nodes survive (two parity nodes fail) — ECCheck workflow A;
//   (b) a data node is among the failed — workflow B (decode required);
//       base3 cannot recover because a whole replication group is gone.
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header("Fig. 13: recovery time (load start → training resume)",
                      "4 nodes x 4 GPUs, two concurrent node failures");

  dnn::ParallelismSpec par{4, 4, 1};
  auto models = dnn::table1_models();

  for (int scenario = 0; scenario < 2; ++scenario) {
    std::printf("\n-- scenario (%c): %s --\n", 'a' + scenario,
                scenario == 0 ? "all data nodes survive (parity nodes fail)"
                              : "a data node fails (decode on recovery)");
    std::printf("%-12s %-12s %-12s %-12s %-12s %-14s\n", "Model", "base1",
                "base2", "base3", "eccheck", "base1/ec");

    for (const auto& model : {models[0], models[1], models[2]}) {
      auto workload = bench::make_scaled_workload(model, par);
      auto engines = bench::make_engines();

      // Failure pattern from ECCheck's placement: scenario a kills the two
      // parity nodes, scenario b kills one data + one parity node (a full
      // base3 replication group in our 4-node layout when possible).
      std::string row[4];
      double ec_time = 0, b1_time = 0;
      int i = 0;
      for (auto* e : engines.all()) {
        auto cfg = bench::testbed_config();
        cfg.size_scale = workload.size_scale;
        cluster::VirtualCluster cluster(cfg);
        auto plan = engines.eccheck->plan_for(cluster);
        int f1, f2;
        if (scenario == 0) {
          f1 = plan.parity_nodes[0];
          f2 = plan.parity_nodes[1];
        } else {
          f1 = plan.data_nodes[1];
          f2 = plan.parity_nodes[1];
        }
        e->save(cluster, workload.shards, 1);
        cluster.kill(f1);
        cluster.kill(f2);
        cluster.replace(f1);
        cluster.replace(f2);
        std::vector<dnn::StateDict> out;
        auto rep = e->load(cluster, 1, out);
        bench::maybe_append_bench_json(
            "fig13_recovery_time",
            model.label + "/" + e->name() + "/scenario_" +
                std::string(1, static_cast<char>('a' + scenario)),
            bench::load_report_json(rep));
        row[i] = rep.success ? human_seconds(rep.resume_time) : "FAIL";
        if (i == 0) b1_time = rep.resume_time;
        if (i == 3) ec_time = rep.resume_time;
        ++i;
      }
      std::printf("%-12s %-12s %-12s %-12s %-12s %-14.1f\n",
                  model.label.c_str(), row[0].c_str(), row[1].c_str(),
                  row[2].c_str(), row[3].c_str(),
                  ec_time > 0 ? b1_time / ec_time : 0.0);
    }
  }
  std::printf(
      "\nPaper shape: eccheck recovers over the fast inter-node fabric "
      "(paper: up to 13.9x faster than remote-storage recovery); scenario b "
      "adds decode time and kills base3 when its whole group is lost.\n");
  return 0;
}
