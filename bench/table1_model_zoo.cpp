// Table I — model configurations and their derived checkpoint footprints.
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header("Table I: model configurations",
                      "checkpoint bytes assume Megatron mixed precision "
                      "(fp16 weights + fp32 Adam moments + fp32 master, "
                      "16 B/param); vocab fixed at 50257");

  std::printf("%-12s %-12s %-6s %-8s %-12s %-14s\n", "Model", "Hidden size",
              "#AH", "#Layers", "Params", "Checkpoint");
  for (const auto& m : dnn::table1_models()) {
    std::printf("%-12s %-12d %-6d %-8d %-12.1fB %-14s\n",
                dnn::family_name(m.family), m.hidden, m.attention_heads,
                m.layers, static_cast<double>(m.param_count()) / 1e9,
                human_bytes(static_cast<double>(m.checkpoint_bytes())).c_str());
  }
  return 0;
}
