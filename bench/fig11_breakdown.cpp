// Fig. 11 — time breakdown of ECCheck checkpointing for GPT-2 models:
// step 1 (decompose + DtoH snapshot, blocking), step 2 (metadata broadcast),
// step 3 (asynchronous encode / XOR-reduce / P2P pipeline).
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace eccheck;
  bench::print_header("Fig. 11: ECCheck checkpointing time breakdown",
                      "GPT-2 models, 4 nodes x 4 GPUs, k=m=2; step 3 runs "
                      "asynchronously — only step 1 stalls training");

  std::printf("%-12s %-14s %-14s %-14s %-16s\n", "Model", "step1(stall)",
              "step2(meta)", "step3(async)", "stall share");
  dnn::ParallelismSpec par{4, 4, 1};
  auto models = dnn::table1_models();
  for (const auto& model : {models[0], models[1], models[2]}) {
    auto workload = bench::make_scaled_workload(model, par);
    auto cfg = bench::testbed_config();
    cfg.size_scale = workload.size_scale;
    cluster::VirtualCluster cluster(cfg);
    auto engines = bench::make_engines();
    auto rep = engines.eccheck->save(cluster, workload.shards, 1);
    bench::maybe_append_bench_json("fig11_breakdown", model.label,
                                   bench::save_report_json(rep));
    Seconds s1 = rep.breakdown.at("step1_snapshot");
    Seconds s2 = rep.breakdown.at("step2_metadata_broadcast") - s1;
    Seconds s3 = rep.breakdown.at("step3_encode_pipeline");
    std::printf("%-12s %-14s %-14s %-14s %-16.1f%%\n", model.label.c_str(),
                human_seconds(s1).c_str(), human_seconds(std::max(0.0, s2)).c_str(),
                human_seconds(s3).c_str(), 100.0 * s1 / rep.total_time);
  }
  std::printf(
      "\nPaper shape: step 1 blocks briefly, step 2 is negligible, step 3 "
      "dominates but overlaps training.\n");
  return 0;
}
