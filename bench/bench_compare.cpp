// bench_compare — baseline / regression gate over BENCH JSON-lines.
//
//   # record current numbers as the baseline (checked into bench/baselines/)
//   ECCHECK_BENCH_JSON=run.jsonl ./fig11_breakdown
//   ./bench_compare --update --baselines ../bench/baselines run.jsonl
//
//   # later: fail if exact byte counters drift, warn on slow timings
//   ./bench_compare --check --warn-only-time
//        --baselines ../bench/baselines run.jsonl
//
// Exit codes: 0 pass (warnings allowed), 1 regression, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/compare.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--update|--check) [options] FILE...\n"
      "  FILE...               BENCH JSON-lines files (ECCHECK_BENCH_JSON "
      "output)\n"
      "  --update              write/overwrite baselines from FILE...\n"
      "  --check               compare FILE... against baselines\n"
      "  --baselines DIR       baseline directory (default bench/baselines)\n"
      "  --time-threshold F    relative tolerance for time metrics "
      "(default 0.25)\n"
      "  --warn-only-time      time regressions warn instead of fail\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eccheck::bench;
  bool update = false, check = false;
  CompareOptions opt;
  std::string dir = "bench/baselines";
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(a, "--update")) update = true;
    else if (!std::strcmp(a, "--check")) check = true;
    else if (!std::strcmp(a, "--baselines")) dir = need();
    else if (!std::strcmp(a, "--time-threshold")) opt.time_threshold = std::atof(need());
    else if (!std::strcmp(a, "--warn-only-time")) opt.warn_only_time = true;
    else if (a[0] == '-') usage(argv[0]);
    else files.push_back(a);
  }
  if (update == check || files.empty()) usage(argv[0]);

  BenchMap current;
  for (const auto& f : files)
    if (!load_jsonl(f, current)) return 2;
  if (current.empty()) {
    std::fprintf(stderr, "bench_compare: no records in input file(s)\n");
    return 2;
  }

  if (update) {
    if (!write_baselines(dir, current)) return 2;
    std::size_t labels = 0;
    for (const auto& [bench, lm] : current) labels += lm.size();
    std::printf("bench_compare: wrote %zu bench baseline(s), %zu label(s) "
                "under %s\n",
                current.size(), labels, dir.c_str());
    return 0;
  }

  std::vector<std::string> benches, missing;
  for (const auto& [bench, lm] : current) benches.push_back(bench);
  BenchMap baseline = load_baselines(dir, benches, &missing);
  for (const auto& bench : missing)
    std::fprintf(stderr,
                 "bench_compare: no baseline for '%s' under %s (run "
                 "--update first)\n",
                 bench.c_str(), dir.c_str());
  if (baseline.empty()) return 2;

  CompareReport rep = compare(baseline, current, opt);
  print_table(rep);
  return rep.ok() ? 0 : 1;
}
