// Microbenchmarks (§IV-A): GF(2^w) region-multiply and XOR kernels — the
// arithmetic inner loops of checkpoint encoding. The BM_Xor/BM_GfMul
// families run on the dispatched (active) kernels; the <isa> variants
// registered in main() pin each supported ISA so scalar-vs-SIMD speedup is
// visible in one run (see EXPERIMENTS.md for a reference table).
#include <benchmark/benchmark.h>

#include <string>

#include "bench/gbench_json.hpp"
#include "common/rng.hpp"
#include "gf/galois.hpp"
#include "gf/simd.hpp"

namespace {

using namespace eccheck;

void BM_XorRegion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Buffer a(n, Buffer::Init::kUninitialized), b(n, Buffer::Init::kUninitialized);
  fill_random(a.span(), 1);
  fill_random(b.span(), 2);
  for (auto _ : state) {
    xor_into(a.span(), b.span());
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_XorRegion)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_GfMulRegion(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto& f = gf::Field::get(w);
  Buffer src(n, Buffer::Init::kUninitialized), dst(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 3);
  const std::uint32_t c = f.max_element() / 2 + 1;
  for (auto _ : state) {
    f.mul_region(c, src.span(), dst.span(), /*accumulate=*/false);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfMulRegion)
    ->Args({4, 65536})
    ->Args({8, 65536})
    ->Args({16, 65536})
    ->Args({8, 1 << 20});

void BM_GfMulRegionAccumulate(benchmark::State& state) {
  const auto& f = gf::Field::get(8);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Buffer src(n, Buffer::Init::kUninitialized), dst(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 5);
  for (auto _ : state) {
    f.mul_region(87, src.span(), dst.span(), /*accumulate=*/true);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfMulRegionAccumulate)->Arg(65536)->Arg(1 << 20);

void BM_GfScalarMul(benchmark::State& state) {
  const auto& f = gf::Field::get(8);
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = f.mul(x, 29) | 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_GfScalarMul);

// --- per-ISA variants -------------------------------------------------------
// Pinned-kernel runs registered per supported ISA; labels carry the ISA name
// ("BM_XorRegionIsa<avx2>/65536") so bench_compare tracks each path
// separately. Only host-supported ISAs register — bench_compare treats
// missing baselines for absent labels as new-label warnings, not failures.

void BM_XorRegionIsa(benchmark::State& state, gf::simd::Isa isa) {
  const gf::simd::Kernels& k = gf::simd::kernels_for(isa);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Buffer a(n, Buffer::Init::kUninitialized), b(n, Buffer::Init::kUninitialized);
  fill_random(a.span(), 1);
  fill_random(b.span(), 2);
  for (auto _ : state) {
    k.xor_into(a.data(), b.data(), n);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_GfMulRegionIsa(benchmark::State& state, gf::simd::Isa isa) {
  const gf::simd::Kernels& k = gf::simd::kernels_for(isa);
  const int w = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto& f = gf::Field::get(w);
  Buffer src(n, Buffer::Init::kUninitialized), dst(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 3);
  const std::uint32_t c = f.max_element() / 2 + 1;
  for (auto _ : state) {
    f.mul_region(c, src.span(), dst.span(), /*accumulate=*/false, k);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void register_isa_benchmarks() {
  for (gf::simd::Isa isa : gf::simd::supported_isas()) {
    const std::string tag = gf::simd::isa_name(isa);
    benchmark::RegisterBenchmark(("BM_XorRegionIsa<" + tag + ">").c_str(),
                                 BM_XorRegionIsa, isa)
        ->Arg(65536)
        ->Arg(1 << 20);
    auto* mul = benchmark::RegisterBenchmark(
        ("BM_GfMulRegionIsa<" + tag + ">").c_str(), BM_GfMulRegionIsa, isa);
    mul->Args({4, 65536})->Args({8, 65536})->Args({16, 65536});
    mul->Args({8, 1 << 20});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_isa_benchmarks();
  return eccheck::bench::gbench_main("micro_gf", argc, argv);
}
