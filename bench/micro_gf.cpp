// Microbenchmarks (§IV-A): GF(2^w) region-multiply and XOR kernels — the
// arithmetic inner loops of checkpoint encoding.
#include <benchmark/benchmark.h>

#include "bench/gbench_json.hpp"
#include "common/rng.hpp"
#include "gf/galois.hpp"

namespace {

using namespace eccheck;

void BM_XorRegion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Buffer a(n, Buffer::Init::kUninitialized), b(n, Buffer::Init::kUninitialized);
  fill_random(a.span(), 1);
  fill_random(b.span(), 2);
  for (auto _ : state) {
    xor_into(a.span(), b.span());
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_XorRegion)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_GfMulRegion(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto& f = gf::Field::get(w);
  Buffer src(n, Buffer::Init::kUninitialized), dst(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 3);
  const std::uint32_t c = f.max_element() / 2 + 1;
  for (auto _ : state) {
    f.mul_region(c, src.span(), dst.span(), /*accumulate=*/false);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfMulRegion)
    ->Args({4, 65536})
    ->Args({8, 65536})
    ->Args({16, 65536})
    ->Args({8, 1 << 20});

void BM_GfMulRegionAccumulate(benchmark::State& state) {
  const auto& f = gf::Field::get(8);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Buffer src(n, Buffer::Init::kUninitialized), dst(n, Buffer::Init::kUninitialized);
  fill_random(src.span(), 5);
  for (auto _ : state) {
    f.mul_region(87, src.span(), dst.span(), /*accumulate=*/true);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfMulRegionAccumulate)->Arg(65536)->Arg(1 << 20);

void BM_GfScalarMul(benchmark::State& state) {
  const auto& f = gf::Field::get(8);
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = f.mul(x, 29) | 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_GfScalarMul);

}  // namespace

int main(int argc, char** argv) {
  return eccheck::bench::gbench_main("micro_gf", argc, argv);
}
