// Fig. 4 — serialization's share of remote checkpointing time as aggregate
// storage bandwidth grows (GPT-2 on 4 GPUs, torch.save-style baseline).
//
// The paper's observation: serialization time is constant while transfer
// time shrinks with bandwidth, so its *relative* share grows — motivating
// the serialization-free protocol.
#include <cstdio>

#include "bench/harness.hpp"
#include "dnn/serializer.hpp"

int main() {
  using namespace eccheck;
  bench::print_header(
      "Fig. 4: serialization overhead in remote checkpointing",
      "GPT-2 on 4 GPUs (tp=4); torch.save-style path: snapshot + serialize + "
      "transfer to remote storage");

  for (const auto& model : {dnn::gpt2_345m(), dnn::table1_models()[0]}) {
    std::printf("\n-- %s (checkpoint %s) --\n", model.label.c_str(),
                human_bytes(static_cast<double>(model.checkpoint_bytes()))
                    .c_str());
    std::printf("%-16s %-14s %-14s %-14s %-18s\n", "storage bw", "serialize",
                "transfer", "total", "serialization %");
    for (double bw_gbps : {5.0, 10.0, 20.0, 40.0}) {
      dnn::ParallelismSpec par{4, 1, 1};
      auto cfg = bench::testbed_config(1, 4);
      cfg.remote_storage_bandwidth = gbps(bw_gbps);
      auto w = bench::make_scaled_workload(model, par);
      cfg.size_scale = w.size_scale;
      cluster::VirtualCluster cluster(cfg);

      ckpt::RemoteSyncEngine base1;
      auto rep = base1.save(cluster, w.shards, 1);
      Seconds snap = rep.breakdown.at("snapshot");
      Seconds ser = rep.breakdown.at("serialize") - snap;
      Seconds transfer = rep.total_time - rep.breakdown.at("serialize");
      std::printf("%-16s %-14s %-14s %-14s %-18.1f\n",
                  (std::to_string(static_cast<int>(bw_gbps)) + " Gbps").c_str(),
                  human_seconds(ser).c_str(), human_seconds(transfer).c_str(),
                  human_seconds(rep.total_time).c_str(),
                  100.0 * ser / rep.total_time);
    }
  }
  std::printf(
      "\nPaper shape: the serialization share grows with storage bandwidth "
      "(transfer shrinks, serialization does not).\n");
  return 0;
}
