// Benchmark baseline / regression comparison (bench_compare tool).
//
// Input is the BENCH JSON-lines format every bench emits under
// ECCHECK_BENCH_JSON: one {"bench":...,"label":...,"report":{...}} object
// per line. Reports are flattened to dotted metric paths
// ("breakdown.step3_encode_pipeline", "stats.save.bytes.net_send") and held
// as doubles; baselines are one <bench>.json file per bench under a
// directory, mapping label → {metric → value}.
//
// Two metric classes, told apart by the metric name alone:
//   * exact  — last dotted segment ends in "bytes" or "count", or is
//     "success". These are deterministic outputs of the virtual cost model;
//     any drift is a real behaviour change and compares with strict
//     equality.
//   * time   — everything else (wall-clock seconds, bytes_per_second, ...).
//     Noisy on shared CI hardware; compares with a relative threshold and
//     can be demoted to warnings (--warn-only-time).
#pragma once

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/stats.hpp"  // json_escape

namespace eccheck::bench {

using MetricMap = std::map<std::string, double>;           // metric → value
using LabelMap = std::map<std::string, MetricMap>;         // label → metrics
using BenchMap = std::map<std::string, LabelMap>;          // bench → labels

/// Deterministic metrics regress with strict equality; see file comment.
inline bool metric_is_exact(const std::string& metric) {
  const std::size_t dot = metric.rfind('.');
  const std::string last =
      dot == std::string::npos ? metric : metric.substr(dot + 1);
  if (last == "success") return true;
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return last.size() >= s.size() &&
           last.compare(last.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("bytes") || ends_with("count");
}

/// Flatten a parsed JSON report into dotted numeric metrics. Booleans map to
/// 0/1, strings and nulls are skipped (labels/details aren't comparable).
inline void flatten_metrics(const obs::JsonValue& v, const std::string& prefix,
                            MetricMap& out) {
  if (v.is_number()) {
    out[prefix] = v.as_number();
  } else if (v.is_bool()) {
    out[prefix] = v.as_bool() ? 1.0 : 0.0;
  } else if (v.is_object()) {
    for (const auto& [k, child] : v.as_object())
      flatten_metrics(child, prefix.empty() ? k : prefix + "." + k, out);
  } else if (v.is_array()) {
    const auto& elems = v.as_array();
    for (std::size_t i = 0; i < elems.size(); ++i)
      flatten_metrics(elems[i], prefix + "[" + std::to_string(i) + "]", out);
  }
  // null / string: skipped (labels and details aren't comparable)
}

/// Read BENCH JSON-lines file(s); malformed lines are reported to stderr and
/// skipped (a crashed bench must not take the whole comparison down).
/// Repeated (bench, label) pairs keep the last record.
inline bool load_jsonl(const std::string& path, BenchMap& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_compare: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string err;
    auto v = obs::JsonValue::parse(line, &err);
    if (!v || !v->is_object()) {
      std::fprintf(stderr, "bench_compare: %s:%zu: bad JSON (%s), skipped\n",
                   path.c_str(), lineno, err.c_str());
      continue;
    }
    const obs::JsonValue* bench = v->find("bench");
    const obs::JsonValue* label = v->find("label");
    const obs::JsonValue* report = v->find("report");
    if (!bench || !bench->is_string() || !label || !label->is_string() ||
        !report) {
      std::fprintf(stderr,
                   "bench_compare: %s:%zu: missing bench/label/report, "
                   "skipped\n",
                   path.c_str(), lineno);
      continue;
    }
    MetricMap metrics;
    flatten_metrics(*report, "", metrics);
    out[bench->as_string()][label->as_string()] = std::move(metrics);
  }
  return true;
}

// ---- baseline files -------------------------------------------------------

inline std::string baseline_path(const std::string& dir,
                                 const std::string& bench) {
  return (std::filesystem::path(dir) / (bench + ".json")).string();
}

/// Write/overwrite one <bench>.json per bench present in `data`.
inline bool write_baselines(const std::string& dir, const BenchMap& data) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  for (const auto& [bench, labels] : data) {
    std::ofstream f(baseline_path(dir, bench));
    if (!f) {
      std::fprintf(stderr, "bench_compare: cannot write '%s'\n",
                   baseline_path(dir, bench).c_str());
      return false;
    }
    f << "{\n";
    bool first_label = true;
    for (const auto& [label, metrics] : labels) {
      if (!first_label) f << ",\n";
      first_label = false;
      f << "  \"" << obs::json_escape(label) << "\": {\n";
      bool first_metric = true;
      for (const auto& [metric, value] : metrics) {
        if (!first_metric) f << ",\n";
        first_metric = false;
        f << "    \"" << obs::json_escape(metric)
          << "\": " << obs::json_number(value);
      }
      f << "\n  }";
    }
    f << "\n}\n";
  }
  return true;
}

/// Load baselines for exactly the benches named in `benches`; a bench with
/// no baseline file is reported by the caller (missing_benches).
inline BenchMap load_baselines(const std::string& dir,
                               const std::vector<std::string>& benches,
                               std::vector<std::string>* missing_benches) {
  BenchMap out;
  for (const auto& bench : benches) {
    const std::string path = baseline_path(dir, bench);
    std::ifstream f(path);
    if (!f) {
      if (missing_benches) missing_benches->push_back(bench);
      continue;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    std::string err;
    auto v = obs::JsonValue::parse(ss.str(), &err);
    if (!v || !v->is_object()) {
      std::fprintf(stderr, "bench_compare: %s: bad JSON (%s)\n", path.c_str(),
                   err.c_str());
      if (missing_benches) missing_benches->push_back(bench);
      continue;
    }
    for (const auto& [label, metrics] : v->as_object()) {
      if (!metrics.is_object()) continue;
      for (const auto& [metric, value] : metrics.as_object())
        if (value.is_number()) out[bench][label][metric] = value.as_number();
    }
  }
  return out;
}

// ---- comparison -----------------------------------------------------------

struct CompareOptions {
  double time_threshold = 0.25;  ///< relative tolerance for time metrics
  bool warn_only_time = false;   ///< demote time regressions to warnings
};

struct CompareRow {
  enum class Status { kPass, kWarn, kFail };
  Status status = Status::kPass;
  std::string bench, label, metric;
  double baseline = 0, current = 0;
  std::string note;
};

struct CompareReport {
  std::vector<CompareRow> rows;
  std::size_t passed = 0, warned = 0, failed = 0;
  bool ok() const { return failed == 0; }
};

/// Compare `current` against `baseline`. Every baseline metric must be
/// present and within tolerance; metrics new in `current` are pass-through
/// notes (the baseline is updated explicitly, not implicitly).
inline CompareReport compare(const BenchMap& baseline, const BenchMap& current,
                             const CompareOptions& opt = {}) {
  CompareReport rep;
  auto add = [&](CompareRow row) {
    switch (row.status) {
      case CompareRow::Status::kPass: ++rep.passed; break;
      case CompareRow::Status::kWarn: ++rep.warned; break;
      case CompareRow::Status::kFail: ++rep.failed; break;
    }
    rep.rows.push_back(std::move(row));
  };
  for (const auto& [bench, labels] : baseline) {
    auto cb = current.find(bench);
    for (const auto& [label, metrics] : labels) {
      const MetricMap* cur_metrics = nullptr;
      if (cb != current.end()) {
        auto cl = cb->second.find(label);
        if (cl != cb->second.end()) cur_metrics = &cl->second;
      }
      if (!cur_metrics) {
        CompareRow row;
        row.status = CompareRow::Status::kFail;
        row.bench = bench;
        row.label = label;
        row.note = "label missing from current run";
        add(std::move(row));
        continue;
      }
      for (const auto& [metric, base_value] : metrics) {
        CompareRow row;
        row.bench = bench;
        row.label = label;
        row.metric = metric;
        row.baseline = base_value;
        auto cm = cur_metrics->find(metric);
        if (cm == cur_metrics->end()) {
          row.status = CompareRow::Status::kFail;
          row.note = "metric missing from current run";
          add(std::move(row));
          continue;
        }
        row.current = cm->second;
        if (metric_is_exact(metric)) {
          if (row.current != row.baseline) {
            row.status = CompareRow::Status::kFail;
            row.note = "exact metric drifted";
          }
        } else {
          const double denom = std::max(std::fabs(row.baseline), 1e-12);
          const double rel = std::fabs(row.current - row.baseline) / denom;
          if (rel > opt.time_threshold) {
            row.status = opt.warn_only_time ? CompareRow::Status::kWarn
                                            : CompareRow::Status::kFail;
            std::ostringstream os;
            os << "off by " << static_cast<int>(rel * 100 + 0.5)
               << "% (threshold " << static_cast<int>(opt.time_threshold * 100)
               << "%)";
            row.note = os.str();
          }
        }
        add(std::move(row));
      }
    }
  }
  // Surface (but never fail on) labels the baseline has not seen yet.
  for (const auto& [bench, labels] : current) {
    auto bb = baseline.find(bench);
    for (const auto& [label, metrics] : labels) {
      if (bb != baseline.end() && bb->second.count(label)) continue;
      CompareRow row;
      row.status = CompareRow::Status::kWarn;
      row.bench = bench;
      row.label = label;
      row.note = "new label (not in baseline; run --update to record)";
      add(std::move(row));
    }
  }
  return rep;
}

/// Human-readable pass/warn/fail table; passes are summarized, not listed.
inline void print_table(const CompareReport& rep, FILE* out = stdout) {
  for (const auto& row : rep.rows) {
    if (row.status == CompareRow::Status::kPass) continue;
    const char* tag =
        row.status == CompareRow::Status::kFail ? "FAIL" : "warn";
    if (row.metric.empty()) {
      std::fprintf(out, "%s  %s/%s: %s\n", tag, row.bench.c_str(),
                   row.label.c_str(), row.note.c_str());
    } else {
      std::fprintf(out, "%s  %s/%s %s: baseline %s, current %s%s%s\n", tag,
                   row.bench.c_str(), row.label.c_str(), row.metric.c_str(),
                   obs::json_number(row.baseline).c_str(),
                   obs::json_number(row.current).c_str(),
                   row.note.empty() ? "" : " — ", row.note.c_str());
    }
  }
  std::fprintf(out, "bench_compare: %zu passed, %zu warned, %zu failed\n",
               rep.passed, rep.warned, rep.failed);
}

}  // namespace eccheck::bench
